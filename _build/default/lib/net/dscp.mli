(** DSCP encoding of Colibri traffic classes (Appendix B): priority
    must hold at every intra-domain switch, so the class is encoded in
    the IP header's DSCP field (EF for Colibri data, CS6 for control),
    and the gateway re-marks all host traffic so malicious hosts cannot
    self-upgrade. *)

type t = int
(** A 6-bit differentiated-services code point. *)

val expedited_forwarding : t
val cs6 : t
val default : t

val of_class : Traffic_class.t -> t
val to_class : t -> Traffic_class.t
(** Unknown code points degrade to best effort — never upgrade. *)

val normalize : host_marked:t -> classified:Traffic_class.t -> t
(** Whatever DSCP a host wrote, the class the gateway determined
    wins. *)

val pp : t Fmt.t
