(** Traffic classes for the Colibri traffic split (§3.4, Appendix B).

    Inter-domain links carry three classes: best-effort traffic of the
    underlying network, Colibri control traffic on SegRs (renewals and
    EER setups), and Colibri data traffic on EERs. The default split
    reserves 20 % / 5 % / 75 % of the link; queuing at the routers
    enforces the separation while letting best-effort scavenge unused
    reservation bandwidth. *)

type t = Best_effort | Colibri_control | Colibri_data

let count = 3
let index = function Best_effort -> 0 | Colibri_control -> 1 | Colibri_data -> 2
let of_index = function
  | 0 -> Best_effort
  | 1 -> Colibri_control
  | 2 -> Colibri_data
  | i -> invalid_arg (Printf.sprintf "Traffic_class.of_index: %d" i)

let all = [ Best_effort; Colibri_control; Colibri_data ]

(** Strict-priority order at schedulers: control first (tiny volume,
    must never starve — it carries the renewals that keep reservations
    alive), then reservation data, then best effort. The CServ's
    admission guarantees data never exceeds its share, so strict
    priority cannot starve best effort (Appendix B, footnote 4). *)
let priority = function Colibri_control -> 0 | Colibri_data -> 1 | Best_effort -> 2

(** Default guaranteed shares of link capacity (§3.4). *)
let default_share = function
  | Best_effort -> 0.20
  | Colibri_control -> 0.05
  | Colibri_data -> 0.75

let pp ppf = function
  | Best_effort -> Fmt.string ppf "best-effort"
  | Colibri_control -> Fmt.string ppf "colibri-control"
  | Colibri_data -> Fmt.string ppf "colibri-data"
