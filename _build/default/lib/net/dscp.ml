(** DSCP encoding of Colibri traffic classes (Appendix B).

    Priority must be given to Colibri traffic not only at border
    routers but at every switch and router inside an AS, which requires
    encoding the class in the intra-domain protocol's header — "in an
    IP network, the traffic class can be encoded using DiffServ and the
    DSCP field". This module fixes that mapping, using the standard
    code points (EF for Colibri data, CS6 for control, default for best
    effort), and provides the gateway-side normalization that prevents
    malicious hosts from self-marking: all traffic entering from a host
    is re-marked according to what the gateway actually classified. *)

type t = int
(** A 6-bit differentiated-services code point. *)

let expedited_forwarding : t = 0b101110 (* EF, RFC 3246 *)
let cs6 : t = 0b110000 (* network control *)
let default : t = 0b000000

(** Marking applied inside an AS for each Colibri class. *)
let of_class : Traffic_class.t -> t = function
  | Traffic_class.Colibri_data -> expedited_forwarding
  | Traffic_class.Colibri_control -> cs6
  | Traffic_class.Best_effort -> default

(** Classification of intra-domain packets back to Colibri classes.
    Unknown code points degrade to best effort — never upgrade. *)
let to_class (dscp : t) : Traffic_class.t =
  if dscp = expedited_forwarding then Traffic_class.Colibri_data
  else if dscp = cs6 then Traffic_class.Colibri_control
  else Traffic_class.Best_effort

(** Gateway-side normalization: whatever DSCP a host wrote, the class
    the gateway determined wins ("to defend against malicious hosts in
    an AS's network, all traffic should pass through a gateway that
    sets this field to the correct value", App. B). *)
let normalize ~(host_marked : t) ~(classified : Traffic_class.t) : t =
  ignore host_marked;
  of_class classified

let pp ppf (d : t) =
  if d = expedited_forwarding then Fmt.string ppf "EF"
  else if d = cs6 then Fmt.string ppf "CS6"
  else if d = default then Fmt.string ppf "BE"
  else Fmt.pf ppf "DSCP(%d)" d
