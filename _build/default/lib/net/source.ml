(** Synthetic traffic sources for experiments.

    A constant-bit-rate source injects fixed-size packets of one
    traffic class into a callback at a configured rate; the Table 2
    reproduction composes several of these per input port. Sources can
    be started and stopped to build the measurement phases. *)

open Colibri_types

type t = {
  engine : Engine.t;
  rate : Bandwidth.t;
  packet_bytes : int;
  emit : int -> unit; (* called with the packet size *)
  mutable running : bool;
}

let interval (t : t) = 8. *. float_of_int t.packet_bytes /. Bandwidth.to_bps t.rate

let create ~(engine : Engine.t) ~(rate : Bandwidth.t) ~(packet_bytes : int)
    ~(emit : int -> unit) : t =
  if not (Bandwidth.is_positive rate) then invalid_arg "Source.create: rate <= 0";
  if packet_bytes <= 0 then invalid_arg "Source.create: packet_bytes <= 0";
  { engine; rate; packet_bytes; emit; running = false }

let start (t : t) =
  if not t.running then begin
    t.running <- true;
    let rec tick () =
      if t.running then begin
        t.emit t.packet_bytes;
        Engine.schedule t.engine ~delay:(interval t) tick
      end
    in
    (* First packet goes out immediately; subsequent ones at line spacing. *)
    Engine.schedule t.engine ~delay:0. tick
  end

let stop (t : t) = t.running <- false
let is_running (t : t) = t.running
