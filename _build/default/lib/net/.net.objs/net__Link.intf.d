lib/net/link.mli: Bandwidth Colibri_types Engine Traffic_class
