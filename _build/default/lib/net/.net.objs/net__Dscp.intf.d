lib/net/dscp.mli: Fmt Traffic_class
