lib/net/dscp.ml: Fmt Traffic_class
