lib/net/engine.ml: Array Colibri_types Float Timebase
