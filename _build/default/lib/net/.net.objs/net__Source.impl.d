lib/net/source.ml: Bandwidth Colibri_types Engine
