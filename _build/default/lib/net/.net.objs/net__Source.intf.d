lib/net/source.mli: Bandwidth Colibri_types Engine
