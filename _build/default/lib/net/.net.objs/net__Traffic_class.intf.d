lib/net/traffic_class.mli: Fmt
