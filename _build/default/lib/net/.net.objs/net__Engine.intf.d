lib/net/engine.mli: Colibri_types Timebase
