lib/net/link.ml: Array Bandwidth Colibri_types Engine List Option Queue Traffic_class
