lib/net/traffic_class.ml: Fmt Printf
