(** SCION-like inter-domain topology (§2.2): ASes grouped into ISDs,
    core and non-core ASes, and capacity-annotated links between
    per-AS interface numbers. The Colibri traffic split (§3.4) derives
    the reservable bandwidth from the link capacities recorded here. *)

open Colibri_types

(** Business relationship of a link, from the local AS's perspective. *)
type link_kind = Parent_child | Child_parent | Core_link | Peering

type link = {
  local_iface : Ids.iface;
  remote_as : Ids.asn;
  remote_iface : Ids.iface;
  capacity : Bandwidth.t;
  kind : link_kind;
}

type as_info = { asn : Ids.asn; core : bool; mutable links : link list }

type t

val create : unit -> t

val add_as : t -> asn:Ids.asn -> core:bool -> unit
(** Raises [Invalid_argument] on duplicates. *)

val connect :
  t ->
  a:Ids.asn ->
  a_iface:Ids.iface ->
  b:Ids.asn ->
  b_iface:Ids.iface ->
  capacity:Bandwidth.t ->
  kind:link_kind ->
  unit
(** Install the bidirectional link [a.a_iface ↔ b.b_iface]; [kind] is
    given from [a]'s perspective. Interface numbers must be fresh and
    non-zero. *)

val find : t -> Ids.asn -> as_info option
val get : t -> Ids.asn -> as_info
val is_core : t -> Ids.asn -> bool
val mem : t -> Ids.asn -> bool
val ases : t -> Ids.asn list
val core_ases : t -> Ids.asn list
val isds : t -> int list
val link_via : t -> Ids.asn -> Ids.iface -> link option
val links : t -> Ids.asn -> link list
val neighbors : t -> Ids.asn -> Ids.asn list

val egress_capacity : t -> Ids.asn -> Ids.iface -> Bandwidth.t
(** Capacity of the link leaving an AS via an interface; interface 0
    (the AS-internal side) is unconstrained. *)

val parents : t -> Ids.asn -> (Ids.asn * link) list
(** Providers of a non-core AS (towards the ISD core). *)

val children : t -> Ids.asn -> (Ids.asn * link) list
val core_links : t -> Ids.asn -> link list

type error =
  | Unknown_as of Ids.asn
  | No_link of Ids.asn * Ids.iface
  | Link_mismatch of Ids.asn * Ids.iface

val pp_error : error Fmt.t

val validate_path : t -> Path.t -> (unit, error) result
(** Check a path is realizable: every AS exists and each egress leads
    to the next AS's ingress. *)

val pp : t Fmt.t
