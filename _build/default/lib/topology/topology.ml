(** SCION-like inter-domain topology (§2.2).

    ASes are grouped into isolation domains (ISDs); each ISD has core
    ASes (managing trust roots and inter-ISD connectivity) and non-core
    ASes below them. Inter-domain links connect a local interface of
    one AS to a remote interface of its neighbor; interface numbers are
    unique within each AS and chosen by the AS itself.

    The topology also records per-link capacity, from which the
    Colibri traffic split (§3.4) derives the bandwidth available to
    reservations on that link. *)

open Colibri_types

type link_kind = Parent_child | Child_parent | Core_link | Peering

type link = {
  local_iface : Ids.iface;
  remote_as : Ids.asn;
  remote_iface : Ids.iface;
  capacity : Bandwidth.t;
  kind : link_kind;
}

type as_info = {
  asn : Ids.asn;
  core : bool;
  mutable links : link list; (* newest first; order is not meaningful *)
}

type t = {
  ases : as_info Ids.Asn_tbl.t;
  mutable isds : int list; (* distinct ISD numbers, unordered *)
}

let create () = { ases = Ids.Asn_tbl.create 97; isds = [] }

let add_as (t : t) ~(asn : Ids.asn) ~core =
  if Ids.Asn_tbl.mem t.ases asn then
    invalid_arg (Fmt.str "Topology.add_as: %a already present" Ids.pp_asn asn);
  Ids.Asn_tbl.replace t.ases asn { asn; core; links = [] };
  if not (List.mem asn.isd t.isds) then t.isds <- asn.isd :: t.isds

let find (t : t) (asn : Ids.asn) : as_info option = Ids.Asn_tbl.find_opt t.ases asn

let get (t : t) (asn : Ids.asn) : as_info =
  match find t asn with
  | Some info -> info
  | None -> invalid_arg (Fmt.str "Topology.get: unknown AS %a" Ids.pp_asn asn)

let is_core (t : t) (asn : Ids.asn) = (get t asn).core
let mem (t : t) (asn : Ids.asn) = Ids.Asn_tbl.mem t.ases asn

let ases (t : t) : Ids.asn list =
  Ids.Asn_tbl.fold (fun asn _ acc -> asn :: acc) t.ases []

let core_ases (t : t) : Ids.asn list =
  Ids.Asn_tbl.fold (fun asn info acc -> if info.core then asn :: acc else acc) t.ases []

let isds (t : t) = t.isds

let flip_kind = function
  | Parent_child -> Child_parent
  | Child_parent -> Parent_child
  | Core_link -> Core_link
  | Peering -> Peering

(** [connect t ~a ~a_iface ~b ~b_iface ~capacity ~kind] installs the
    bidirectional link [a.a_iface ↔ b.b_iface]; [kind] is given from
    [a]'s perspective ([Parent_child] when [a] is [b]'s provider).
    Interface numbers must be fresh and non-zero. *)
let connect (t : t) ~(a : Ids.asn) ~a_iface ~(b : Ids.asn) ~b_iface
    ~(capacity : Bandwidth.t) ~(kind : link_kind) =
  let ia = get t a and ib = get t b in
  if a_iface = Ids.local_iface || b_iface = Ids.local_iface then
    invalid_arg "Topology.connect: interface 0 is reserved";
  if List.exists (fun l -> l.local_iface = a_iface) ia.links then
    invalid_arg (Fmt.str "Topology.connect: %a iface %d in use" Ids.pp_asn a a_iface);
  if List.exists (fun l -> l.local_iface = b_iface) ib.links then
    invalid_arg (Fmt.str "Topology.connect: %a iface %d in use" Ids.pp_asn b b_iface);
  ia.links <-
    { local_iface = a_iface; remote_as = b; remote_iface = b_iface; capacity; kind }
    :: ia.links;
  ib.links <-
    {
      local_iface = b_iface;
      remote_as = a;
      remote_iface = a_iface;
      capacity;
      kind = flip_kind kind;
    }
    :: ib.links

(** Link leaving [asn] through [iface], if any. *)
let link_via (t : t) (asn : Ids.asn) (iface : Ids.iface) : link option =
  List.find_opt (fun l -> l.local_iface = iface) (get t asn).links

let links (t : t) (asn : Ids.asn) : link list = (get t asn).links

let neighbors (t : t) (asn : Ids.asn) : Ids.asn list =
  List.map (fun l -> l.remote_as) (get t asn).links

(** Capacity of the link leaving [asn] via [iface]; interface 0 (the
    AS-internal side) is treated as unconstrained — intra-AS capacity
    is not Colibri's concern. *)
let egress_capacity (t : t) (asn : Ids.asn) (iface : Ids.iface) : Bandwidth.t =
  if iface = Ids.local_iface then Float.max_float
  else
    match link_via t asn iface with
    | Some l -> l.capacity
    | None ->
        invalid_arg (Fmt.str "Topology.egress_capacity: %a has no iface %d" Ids.pp_asn asn iface)

(** Parents of a non-core AS (its providers, towards the ISD core). *)
let parents (t : t) (asn : Ids.asn) : (Ids.asn * link) list =
  List.filter_map
    (fun l -> if l.kind = Child_parent then Some (l.remote_as, l) else None)
    (get t asn).links

let children (t : t) (asn : Ids.asn) : (Ids.asn * link) list =
  List.filter_map
    (fun l -> if l.kind = Parent_child then Some (l.remote_as, l) else None)
    (get t asn).links

let core_links (t : t) (asn : Ids.asn) : link list =
  List.filter (fun l -> l.kind = Core_link) (get t asn).links

type error = Unknown_as of Ids.asn | No_link of Ids.asn * Ids.iface | Link_mismatch of Ids.asn * Ids.iface

let pp_error ppf = function
  | Unknown_as a -> Fmt.pf ppf "unknown AS %a" Ids.pp_asn a
  | No_link (a, i) -> Fmt.pf ppf "%a has no interface %d" Ids.pp_asn a i
  | Link_mismatch (a, i) -> Fmt.pf ppf "link mismatch at %a iface %d" Ids.pp_asn a i

(** Check that a {!Path.t} is realizable in this topology: every AS
    exists and each egress interface leads to the next AS's ingress
    interface. *)
let validate_path (t : t) (path : Path.t) : (unit, error) result =
  let rec go = function
    | [] -> Ok ()
    | [ (last : Path.hop) ] ->
        if not (mem t last.asn) then Error (Unknown_as last.asn) else Ok ()
    | (h : Path.hop) :: (next : Path.hop) :: rest ->
        if not (mem t h.asn) then Error (Unknown_as h.asn)
        else begin
          match link_via t h.asn h.egress with
          | None -> Error (No_link (h.asn, h.egress))
          | Some l ->
              if Ids.equal_asn l.remote_as next.asn && l.remote_iface = next.ingress
              then go (next :: rest)
              else Error (Link_mismatch (h.asn, h.egress))
        end
  in
  go path

let pp ppf (t : t) =
  let pp_as ppf (info : as_info) =
    Fmt.pf ppf "%a%s: %a" Ids.pp_asn info.asn
      (if info.core then " (core)" else "")
      Fmt.(list ~sep:comma (fun ppf l ->
               Fmt.pf ppf "%d→%a.%d" l.local_iface Ids.pp_asn l.remote_as l.remote_iface))
      info.links
  in
  let infos = Ids.Asn_tbl.fold (fun _ i acc -> i :: acc) t.ases [] in
  let infos = List.sort (fun a b -> Ids.compare_asn a.asn b.asn) infos in
  Fmt.(list ~sep:(any "@\n") pp_as) ppf infos
