lib/topology/topology.ml: Bandwidth Colibri_types Float Fmt Ids List Path
