lib/topology/topology_gen.ml: Bandwidth Colibri_types Hashtbl Ids List Option Path Random Topology
