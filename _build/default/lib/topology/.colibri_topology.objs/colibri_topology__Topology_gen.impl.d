lib/topology/topology_gen.ml: Bandwidth Colibri_types Ids List Option Path Random Topology
