lib/topology/topology.mli: Bandwidth Colibri_types Fmt Ids Path
