lib/topology/topology_gen.mli: Bandwidth Colibri_types Ids Path Random Topology
