(** AES-CMAC (RFC 4493 / NIST SP 800-38B).

    CMAC over AES-128 is the message-authentication primitive used
    everywhere in Colibri: the DRKey pseudo-random function (Eq. (1)),
    the segment-reservation tokens (Eq. (3)), the hop authenticators
    (Eq. (4)), and the per-packet hop validation fields (Eq. (6)). *)

type key

val of_secret : bytes -> key
(** Derive the CMAC subkeys from a 16-byte secret. *)

val of_aes_key : Aes.key -> key

val mac_size : int
(** 16 bytes. *)

val digest : key -> bytes -> bytes
(** The full 16-byte CMAC of a message of any length. *)

val digest_trunc : key -> bytes -> len:int -> bytes
(** First [len] (1–16) bytes of the CMAC; Colibri truncates hop
    validation fields to ℓ_hvf = 4 bytes. *)

val verify : key -> bytes -> tag:bytes -> bool
(** Constant-time comparison against a (possibly truncated) tag. *)
