(** Pseudo-random function used by the DRKey hierarchy (Eq. (1)).

    [PRF_K(m)] is AES-CMAC keyed with [K]; the output is a fresh
    16-byte key. CMAC is a PRF under the standard assumption that AES
    is a pseudo-random permutation, which is exactly the construction
    PISKES [43] uses. *)

type key = Cmac.key

let key_size = 16
let of_secret = Cmac.of_secret

(** [derive k input] evaluates the PRF; the result can itself be used
    as a key ("dynamically recreatable keys"). *)
let derive (k : key) (input : bytes) : bytes = Cmac.digest k input

let derive_string (k : key) (input : string) : bytes =
  derive k (Bytes.of_string input)

(** Fresh random secret value, for key servers. Uses OCaml's [Random];
    cryptographic quality is irrelevant in a simulation, but the
    interface isolates the choice. *)
let random_secret ~rng : bytes =
  Bytes.init key_size (fun _ -> Char.chr (Random.State.int rng 256))
