(** Authenticated encryption with associated data, built as
    encrypt-then-MAC from AES-CTR and AES-CMAC.

    Colibri uses AEAD on exactly one channel: returning hop
    authenticators σ_i from on-path ASes to the source AS during EER
    setup (Eq. (5)), keyed with the DRKey [K_{AS_i → AS_0}]. *)

type key

val nonce_size : int
(** 16 bytes; nonces must be unique per key. *)

val tag_size : int
(** 16 bytes appended to the ciphertext. *)

val of_secret : bytes -> key
(** Domain-separates encryption and MAC keys from one 16-byte secret. *)

val seal : key -> nonce:bytes -> ad:bytes -> bytes -> bytes
(** [seal k ~nonce ~ad plain] is [ciphertext ‖ tag]; the tag covers
    [nonce ‖ len(ad) ‖ ad ‖ ciphertext]. *)

val open_ : key -> nonce:bytes -> ad:bytes -> bytes -> bytes option
(** Authenticate and decrypt; [None] on any mismatch. *)
