(** Hexadecimal encoding helpers, used by tests (NIST / RFC vectors)
    and debugging output. *)

val of_bytes : bytes -> string

val to_bytes : string -> bytes
(** Decode a hex string; spaces are ignored so RFC test vectors can be
    pasted verbatim. Raises [Invalid_argument] on odd length or bad
    characters. *)
