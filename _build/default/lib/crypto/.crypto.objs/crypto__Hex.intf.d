lib/crypto/hex.mli:
