lib/crypto/cmac.ml: Aes Bytes Char
