lib/crypto/aead.ml: Aes Buffer Bytes Char Cmac Int32 Int64 Prf
