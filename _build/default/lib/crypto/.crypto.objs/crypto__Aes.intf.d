lib/crypto/aes.mli:
