lib/crypto/aead.mli:
