lib/crypto/prf.mli: Cmac Random
