lib/crypto/prf.ml: Bytes Char Cmac Random
