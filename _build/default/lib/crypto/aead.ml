(** Authenticated encryption with associated data, built as
    encrypt-then-MAC from AES-CTR and AES-CMAC.

    Colibri uses AEAD on exactly one channel: returning hop
    authenticators [σ_i] from on-path ASes to the source AS during EER
    setup (Eq. (5)), keyed with the DRKey [K_{AS_i → AS_0}]. Encryption
    and MAC keys are domain-separated from the given secret by one PRF
    call each. The tag covers [nonce ‖ len(ad) ‖ ad ‖ ciphertext]. *)

type key = { enc : Aes.key; mac : Cmac.key }

let nonce_size = 16
let tag_size = 16

let of_secret (secret : bytes) : key =
  let prf = Prf.of_secret secret in
  {
    enc = Aes.of_secret (Prf.derive_string prf "colibri-aead-enc");
    mac = Cmac.of_secret (Prf.derive_string prf "colibri-aead-mac");
  }

(* CTR keystream: block i is AES_K(nonce ⊕ ctr_i) where the counter
   occupies the last 8 bytes big-endian. *)
let ctr_xor (k : Aes.key) ~(nonce : bytes) (data : bytes) : bytes =
  let n = Bytes.length data in
  let out = Bytes.create n in
  let block = Bytes.create 16 in
  let ks = Bytes.create 16 in
  let nblocks = (n + 15) / 16 in
  for i = 0 to nblocks - 1 do
    Bytes.blit nonce 0 block 0 16;
    let ctr = Int64.of_int i in
    let prev = Bytes.get_int64_be block 8 in
    Bytes.set_int64_be block 8 (Int64.logxor prev ctr);
    Aes.encrypt_block k ~src:block ~src_off:0 ~dst:ks ~dst_off:0;
    let base = i * 16 in
    let len = min 16 (n - base) in
    for j = 0 to len - 1 do
      Bytes.set out (base + j)
        (Char.chr (Char.code (Bytes.get data (base + j)) lxor Char.code (Bytes.get ks j)))
    done
  done;
  out

let tag_input ~nonce ~ad ~cipher =
  let adlen = Bytes.length ad in
  let b = Buffer.create (16 + 4 + adlen + Bytes.length cipher) in
  Buffer.add_bytes b nonce;
  Buffer.add_int32_be b (Int32.of_int adlen);
  Buffer.add_bytes b ad;
  Buffer.add_bytes b cipher;
  Buffer.to_bytes b

(** [seal key ~nonce ~ad plaintext] returns [ciphertext ‖ tag]. The
    nonce must be 16 bytes and unique per key. *)
let seal (k : key) ~(nonce : bytes) ~(ad : bytes) (plain : bytes) : bytes =
  if Bytes.length nonce <> nonce_size then invalid_arg "Aead.seal: bad nonce size";
  let cipher = ctr_xor k.enc ~nonce plain in
  let tag = Cmac.digest k.mac (tag_input ~nonce ~ad ~cipher) in
  Bytes.cat cipher tag

(** [open_ key ~nonce ~ad sealed] authenticates and decrypts; [None]
    if the tag does not verify or the input is too short. *)
let open_ (k : key) ~(nonce : bytes) ~(ad : bytes) (sealed : bytes) : bytes option =
  let n = Bytes.length sealed in
  if Bytes.length nonce <> nonce_size || n < tag_size then None
  else begin
    let cipher = Bytes.sub sealed 0 (n - tag_size) in
    let tag = Bytes.sub sealed (n - tag_size) tag_size in
    if Cmac.verify k.mac (tag_input ~nonce ~ad ~cipher) ~tag then
      Some (ctr_xor k.enc ~nonce cipher)
    else None
  end
