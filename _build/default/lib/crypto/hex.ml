(** Hexadecimal encoding helpers, used by tests (NIST / RFC vectors)
    and debugging output. *)

let of_bytes (b : bytes) : string =
  let buf = Buffer.create (2 * Bytes.length b) in
  Bytes.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) b;
  Buffer.contents buf

let digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Hex.to_bytes: not a hex digit"

(** Decode a hex string; spaces are ignored so RFC test vectors can be
    pasted verbatim. Raises [Invalid_argument] on odd length or bad
    characters. *)
let to_bytes (s : string) : bytes =
  let s = String.concat "" (String.split_on_char ' ' s) in
  let n = String.length s in
  if n mod 2 <> 0 then invalid_arg "Hex.to_bytes: odd length";
  Bytes.init (n / 2) (fun i ->
      Char.chr ((digit s.[2 * i] lsl 4) lor digit s.[(2 * i) + 1]))
