(** AES-CMAC (RFC 4493 / NIST SP 800-38B).

    CMAC over AES-128 is the message-authentication primitive used
    everywhere in Colibri: the DRKey pseudo-random function (Eq. (1)),
    the segment-reservation tokens (Eq. (3)), the hop authenticators
    (Eq. (4)), and the per-packet hop validation fields (Eq. (6)). *)

type key = { aes : Aes.key; k1 : bytes; k2 : bytes }

let msb_set b = Char.code (Bytes.get b 0) land 0x80 <> 0

(* Left-shift a 16-byte block by one bit. *)
let shl1 (b : bytes) : bytes =
  let out = Bytes.create 16 in
  let carry = ref 0 in
  for i = 15 downto 0 do
    let v = Char.code (Bytes.get b i) in
    Bytes.set out i (Char.chr (((v lsl 1) land 0xff) lor !carry));
    carry := v lsr 7
  done;
  out

let xor_last_byte b v =
  Bytes.set b 15 (Char.chr (Char.code (Bytes.get b 15) lxor v))

(* Subkey generation per RFC 4493 §2.3. *)
let derive_subkeys aes =
  let l = Aes.encrypt aes (Bytes.make 16 '\000') in
  let k1 = shl1 l in
  if msb_set l then xor_last_byte k1 0x87;
  let k2 = shl1 k1 in
  if msb_set k1 then xor_last_byte k2 0x87;
  (k1, k2)

let of_secret (secret : bytes) : key =
  let aes = Aes.of_secret secret in
  let k1, k2 = derive_subkeys aes in
  { aes; k1; k2 }

let of_aes_key (aes : Aes.key) : key =
  let k1, k2 = derive_subkeys aes in
  { aes; k1; k2 }

let mac_size = 16

(** [digest key msg] is the full 16-byte CMAC of [msg]. *)
let digest (k : key) (msg : bytes) : bytes =
  let n = Bytes.length msg in
  let nblocks = if n = 0 then 1 else (n + 15) / 16 in
  let x = Bytes.make 16 '\000' in
  (* Process all complete blocks except the last. *)
  for i = 0 to nblocks - 2 do
    for j = 0 to 15 do
      Bytes.set x j
        (Char.chr (Char.code (Bytes.get x j) lxor Char.code (Bytes.get msg ((i * 16) + j))))
    done;
    Aes.encrypt_block k.aes ~src:x ~src_off:0 ~dst:x ~dst_off:0
  done;
  (* Last block: complete → xor K1; partial → pad 10* and xor K2. *)
  let off = (nblocks - 1) * 16 in
  let rem = n - off in
  let last = Bytes.make 16 '\000' in
  if rem = 16 then begin
    Bytes.blit msg off last 0 16;
    for j = 0 to 15 do
      Bytes.set last j
        (Char.chr (Char.code (Bytes.get last j) lxor Char.code (Bytes.get k.k1 j)))
    done
  end
  else begin
    if rem > 0 then Bytes.blit msg off last 0 rem;
    Bytes.set last rem '\x80';
    for j = 0 to 15 do
      Bytes.set last j
        (Char.chr (Char.code (Bytes.get last j) lxor Char.code (Bytes.get k.k2 j)))
    done
  end;
  for j = 0 to 15 do
    Bytes.set x j (Char.chr (Char.code (Bytes.get x j) lxor Char.code (Bytes.get last j)))
  done;
  Aes.encrypt_block k.aes ~src:x ~src_off:0 ~dst:x ~dst_off:0;
  x

(** [digest_trunc key msg ~len] is the first [len] bytes of the CMAC;
    Colibri truncates hop validation fields to ℓ_hvf = 4 bytes. *)
let digest_trunc (k : key) (msg : bytes) ~len : bytes =
  if len < 1 || len > 16 then invalid_arg "Cmac.digest_trunc: len must be in 1..16";
  Bytes.sub (digest k msg) 0 len

(** Constant-time tag comparison (length must match). *)
let verify (k : key) (msg : bytes) ~(tag : bytes) : bool =
  let len = Bytes.length tag in
  if len < 1 || len > 16 then false
  else begin
    let expect = digest k msg in
    let acc = ref 0 in
    for i = 0 to len - 1 do
      acc := !acc lor (Char.code (Bytes.get expect i) lxor Char.code (Bytes.get tag i))
    done;
    !acc = 0
  end
