(** Pseudo-random function used by the DRKey hierarchy (Eq. (1)).

    [PRF_K(m)] is AES-CMAC keyed with [K]; the output is a fresh
    16-byte key — the "dynamically recreatable keys" of PISKES [43]. *)

type key = Cmac.key

val key_size : int
(** 16 bytes. *)

val of_secret : bytes -> key

val derive : key -> bytes -> bytes
(** Evaluate the PRF; the result can itself be used as a key. *)

val derive_string : key -> string -> bytes

val random_secret : rng:Random.State.t -> bytes
(** Fresh random secret value for key servers. Simulation-grade
    randomness; the interface isolates the choice. *)
