(** Token-bucket rate limiter (§4.8).

    The deterministic monitor at the Colibri gateway tracks each EER
    with a token bucket: it "only needs to keep a time stamp and a
    counter in memory for each flow" while permitting short traffic
    spikes up to the burst allowance. Rates are in bits per second,
    packet sizes in bytes (the normalization to bits happens here). *)

open Colibri_types

type t = {
  mutable rate : Bandwidth.t; (* refill rate, bits per second *)
  mutable burst : float; (* bucket capacity, bits *)
  mutable tokens : float; (* current fill, bits *)
  mutable last : Timebase.t; (* last refill time *)
}

(** [create ~rate ~burst ~now] makes a full bucket. [burst] is the
    burst allowance in {e seconds at rate}: the bucket holds
    [rate * burst] bits. A typical value is 0.05–0.2 s. *)
let create ~(rate : Bandwidth.t) ~(burst : float) ~(now : Timebase.t) : t =
  if not (Bandwidth.is_positive rate) then invalid_arg "Token_bucket.create: rate <= 0";
  if burst <= 0. then invalid_arg "Token_bucket.create: burst <= 0";
  let cap = Bandwidth.to_bps rate *. burst in
  { rate; burst = cap; tokens = cap; last = now }

let refill (t : t) ~(now : Timebase.t) =
  let dt = Float.max 0. (Timebase.diff now t.last) in
  t.tokens <- Float.min t.burst (t.tokens +. (Bandwidth.to_bps t.rate *. dt));
  t.last <- now

(** [admit t ~now ~bytes] consumes [8*bytes] tokens if available;
    [false] means the packet exceeds the reservation and must be
    dropped. *)
let admit (t : t) ~(now : Timebase.t) ~(bytes : int) : bool =
  refill t ~now;
  let need = 8. *. float_of_int bytes in
  if t.tokens >= need then begin
    t.tokens <- t.tokens -. need;
    true
  end
  else false

(** Update the rate, e.g. after a renewal changed the reservation
    bandwidth. The burst allowance keeps its duration. *)
let set_rate (t : t) ~(rate : Bandwidth.t) ~(now : Timebase.t) =
  refill t ~now;
  let duration = t.burst /. Bandwidth.to_bps t.rate in
  t.rate <- rate;
  t.burst <- Bandwidth.to_bps rate *. duration;
  t.tokens <- Float.min t.tokens t.burst

let rate (t : t) = t.rate
let available_bits (t : t) ~now = refill t ~now; t.tokens
