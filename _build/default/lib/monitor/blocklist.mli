(** Blocklist of misbehaving source ASes (§4.8, "Policing").

    When overuse is confirmed, the detecting AS blocks further traffic
    over reservations from the offending source AS. The list stays
    very short ("only a tiny share of the 70 000 ASes is expected to
    misbehave"), so a plain hash set suffices; entries optionally
    expire. *)

open Colibri_types

type t

val create : clock:Timebase.clock -> unit -> t

val block : t -> Ids.asn -> duration:float option -> unit
(** [duration = None] blocks until {!unblock}. *)

val unblock : t -> Ids.asn -> unit
val is_blocked : t -> Ids.asn -> bool
val size : t -> int
val blocked_ases : t -> Ids.asn list
