(** Probabilistic overuse-flow detector (§4.8, LOFT-style [44, 64]).

    Transit and transfer ASes see too many EERs for per-flow state, so
    overuse detection runs on a count-min sketch with a fixed memory
    footprint. Per packet the OFD receives the flow label
    [(SrcAS, ResId)] and the {e normalized packet size} (packet bits /
    reservation bandwidth — seconds of reservation time consumed).
    Flows whose windowed estimate exceeds [threshold × window] are
    reported as suspects, to be escalated to exact deterministic
    monitoring. The sketch never under-estimates, so heavy flows are
    always flagged within their window; collisions can cause false
    positives — which is why suspects are verified, not punished. *)

open Colibri_types

type t

val create :
  ?width:int -> ?depth:int -> window:float -> threshold:float -> now:float -> unit -> t

val observe :
  t -> now:float -> key:Ids.res_key -> normalized:float -> [ `Ok | `Suspect ]
(** Account one packet; [`Suspect] is reported at most once per flow
    per window. *)

val estimate : t -> Ids.res_key -> float
(** Current sketch estimate (normalized seconds this window): the
    count-min upper bound. *)

val suspects : t -> Ids.res_key list
(** Flows flagged in the current window. *)

val memory_bytes : t -> int
val observed_packets : t -> int
val window : t -> float
val threshold : t -> float

val max_cell : t -> float
(** Largest cell of the sketch this window — the saturation gauge the
    router exports. Observation-only: never mutates the sketch. *)
