lib/monitor/blocklist.mli: Colibri_types Ids Timebase
