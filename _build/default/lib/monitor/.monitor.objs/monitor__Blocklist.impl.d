lib/monitor/blocklist.ml: Colibri_types Ids Option Timebase
