lib/monitor/ofd.ml: Array Colibri_types Float Hashtbl Ids
