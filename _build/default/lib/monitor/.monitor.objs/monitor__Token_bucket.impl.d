lib/monitor/token_bucket.ml: Bandwidth Colibri_types Float Fmt Timebase
