lib/monitor/duplicate_filter.ml: Array Bytes Char Float Hashtbl
