lib/monitor/token_bucket.mli: Bandwidth Colibri_types Timebase
