lib/monitor/duplicate_filter.mli:
