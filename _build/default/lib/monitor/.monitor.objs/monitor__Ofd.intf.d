lib/monitor/ofd.mli: Colibri_types Ids
