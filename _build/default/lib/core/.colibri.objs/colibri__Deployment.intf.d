lib/core/deployment.mli: Bandwidth Colibri_topology Colibri_types Cserv Fmt Gateway Ids Net Path Protocol Reservation Router Segments Timebase Topology
