lib/core/reservation.mli: Bandwidth Colibri_types Fmt Ids Packet Path Segments Timebase
