lib/core/reservation.ml: Bandwidth Colibri_types Fmt Ids List Packet Path Segments Timebase
