lib/core/distributed.mli: Admission Bandwidth Colibri_types Ids Timebase
