lib/core/dataplane_shard.ml: Array Bytes Colibri_types Gateway Hashtbl Hvf Ids Packet Reservation Router Timebase
