lib/core/dataplane_shard.ml: Array Bytes Char Colibri_types Gateway Hashtbl Hvf Ids Obs Packet Reservation Router Timebase
