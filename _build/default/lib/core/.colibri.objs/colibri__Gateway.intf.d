lib/core/gateway.mli: Colibri_types Fmt Hvf Ids Obs Packet Reservation Timebase
