lib/core/gateway.mli: Colibri_types Fmt Hvf Ids Packet Reservation Timebase
