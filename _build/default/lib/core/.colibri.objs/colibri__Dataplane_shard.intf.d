lib/core/dataplane_shard.mli: Colibri_types Gateway Hvf Ids Obs Packet Reservation Router Timebase
