lib/core/dataplane_shard.mli: Colibri_types Gateway Hvf Ids Packet Reservation Router Timebase
