lib/core/host_stack.ml: Bandwidth Colibri_types Deployment Float Ids List Net Reservation Timebase
