lib/core/admission.ml: Array Bandwidth Colibri_types Float Fmt Hashtbl Ids List Option Timebase
