lib/core/cserv.ml: Admission Bandwidth Colibri_topology Colibri_types Crypto Drkey Fmt Fun Hvf Ids List Obs Option Packet Path Protocol Reservation Timebase Topology
