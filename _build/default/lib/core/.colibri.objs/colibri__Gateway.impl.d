lib/core/gateway.ml: Array Colibri_types Fmt Hashtbl Hvf Ids List Monitor Obs Packet Path Reservation Timebase
