lib/core/gateway.ml: Array Colibri_types Fmt Hashtbl Hvf Ids List Monitor Packet Path Reservation Timebase
