lib/core/hvf.ml: Bytes Char Colibri_types Crypto Ids Int32 Int64 Packet Path Timebase
