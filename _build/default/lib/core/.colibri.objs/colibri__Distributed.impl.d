lib/core/distributed.ml: Admission Bandwidth Colibri_types Fmt Ids List Timebase
