lib/core/distributed.ml: Admission Bandwidth Colibri_types Hashtbl Ids Timebase
