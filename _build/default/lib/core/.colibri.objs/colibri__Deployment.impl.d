lib/core/deployment.ml: Bandwidth Colibri_topology Colibri_types Cserv Drkey Fmt Gateway Ids List Net Option Packet Path Protocol Random Reservation Result Router Segments Timebase Topology
