lib/core/protocol.ml: Bandwidth Buffer Bytes Colibri_types Crypto Float Fmt Ids Int32 Int64 List Packet Path Reservation
