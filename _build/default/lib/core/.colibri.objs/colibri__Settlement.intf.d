lib/core/settlement.mli: Bandwidth Colibri_topology Colibri_types Fmt Ids Timebase
