lib/core/admission.mli: Bandwidth Colibri_types Fmt Ids Timebase
