lib/core/router.ml: Array Bandwidth Bytes Colibri_types Float Fmt Hashtbl Hvf Ids Monitor Obs Option Packet Path Timebase
