lib/core/router.ml: Array Bandwidth Bytes Colibri_types Float Fmt Hashtbl Hvf Ids Monitor Option Packet Path Timebase
