lib/core/control_net.ml: Bandwidth Colibri_topology Colibri_types Hashtbl Ids List Net Topology
