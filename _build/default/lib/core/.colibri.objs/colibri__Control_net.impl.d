lib/core/control_net.ml: Bandwidth Colibri_topology Colibri_types Ids List Net Obs Topology
