lib/core/protocol.mli: Bandwidth Colibri_types Crypto Fmt Ids Packet Path Reservation
