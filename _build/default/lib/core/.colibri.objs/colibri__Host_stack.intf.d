lib/core/host_stack.mli: Bandwidth Colibri_types Deployment Ids Timebase
