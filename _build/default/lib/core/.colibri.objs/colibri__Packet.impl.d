lib/core/packet.ml: Array Bandwidth Bytes Colibri_types Float Fmt Ids Int32 Int64 Path Timebase
