lib/core/control_net.mli: Bandwidth Colibri_topology Colibri_types Ids Net Obs Topology
