lib/core/packet.mli: Bandwidth Colibri_types Fmt Ids Path Timebase
