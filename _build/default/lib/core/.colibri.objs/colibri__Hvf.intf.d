lib/core/hvf.mli: Colibri_types Crypto Ids Packet Path Timebase
