lib/core/settlement.ml: Bandwidth Colibri_topology Colibri_types Float Fmt Ids List Timebase
