lib/core/router.mli: Bandwidth Colibri_types Fmt Hvf Ids Monitor Obs Packet Timebase
