lib/core/cserv.mli: Admission Bandwidth Colibri_topology Colibri_types Drkey Hvf Ids Obs Packet Path Protocol Random Reservation Timebase Topology
