(** Colibri packet format (§4.3, Eq. (2)).

    {v
    Packet  = Path ‖ ResInfo ‖ EERInfo ‖ Ts ‖ V_0 ‖ … ‖ V_l ‖ Payload
    Path    = (In_0, Eg_0) ‖ … ‖ (In_l, Eg_l)
    ResInfo = SrcAS ‖ ResId ‖ Bw ‖ ExpT ‖ Ver
    EERInfo = SrcHost ‖ DstHost
    v}

    One format serves all Colibri control- and data-plane traffic; the
    {!kind} flag distinguishes packets on segment reservations (where
    [EERInfo] is unused) from packets on end-to-end reservations. The
    wire encoding is fixed-width big-endian throughout, so MAC inputs
    are canonical. *)

open Colibri_types

(** Whether the packet travels on a segment reservation or an
    end-to-end reservation. *)
type kind = Seg | Eer

(** The ResInfo header block (Eq. (2c)): reservation identity,
    bandwidth, expiration, and version. *)
type res_info = {
  src_as : Ids.asn;
  res_id : Ids.res_id;
  bw : Bandwidth.t;
  exp_time : Timebase.t;
  version : int;
}

(** The EERInfo block (Eq. (2d)): end-host addresses, unique inside
    their AS. *)
type eer_info = { src_host : Ids.host; dst_host : Ids.host }

(** A parsed Colibri packet. [payload_len] stands in for the payload,
    whose contents are opaque to all Colibri processing. *)
type t = {
  kind : kind;
  path : Path.t;
  res_info : res_info;
  eer_info : eer_info option;  (** [Some] for EER data packets *)
  ts : Timebase.Ts.t;
  hvfs : bytes array;  (** hop validation fields, {!hvf_len} bytes each *)
  payload_len : int;
}

val res_key : t -> Ids.res_key
(** The packet's globally unique reservation identity
    [(SrcAS, ResId)]. *)

val hvf_len : int
(** ℓ_hvf = 4 bytes (§4.5): short static MACs are acceptable given the
    short lifetime of reservations. *)

(** {1 Canonical encodings}

    Used both on the wire and as MAC inputs. *)

val res_info_len : int
val res_info_to_bytes : res_info -> bytes
val res_info_of_bytes : bytes -> off:int -> res_info
val eer_info_len : int
val eer_info_to_bytes : eer_info -> bytes
val eer_info_of_bytes : bytes -> off:int -> eer_info

(** {1 Wire format} *)

val magic : int
val fixed_header_len : int

val header_len : hops:int -> int
(** Total header size for a path of [hops] ASes. *)

val wire_size : t -> int
(** Header plus payload: the [PktSize] that Eq. (6) authenticates, so
    an AS flooding tiny or header-only packets is still accountable
    for their full cost. *)

type parse_error =
  | Truncated
  | Bad_magic
  | Bad_kind
  | Bad_hop_count
  | Bad_path of Path.error

val pp_parse_error : parse_error Fmt.t

val to_bytes : t -> bytes
(** Serialize the header (the payload is represented by its length
    only). *)

val of_bytes : bytes -> (t, parse_error) result
(** Parse and structurally validate a packet header. *)

val pp : t Fmt.t
