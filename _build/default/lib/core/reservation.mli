(** Reservation state: segment reservations (SegRs) and end-to-end
    reservations (EERs), with the versioning and renewal semantics of
    §4.2.

    - SegRs are intermediate-term AS-to-AS reservations (≈5 minutes).
      Only one version is {e active} at a time; a renewal creates a
      {e pending} version that must be activated by an explicit request,
      so ASes control the switch instant and no over-allocation with
      EERs can occur.
    - EERs are short-term host-to-host reservations (16 s). Multiple
      versions of an EER may be valid simultaneously for seamless
      renewal; monitoring maps all versions of an EER to the same flow,
      so concurrent versions grant the {e maximum}, not the sum, of
      their bandwidths. EERs expire automatically and cannot be removed
      early. *)

open Colibri_types

val segr_lifetime : Timebase.t
(** ≈ five minutes (§3.3). *)

val eer_lifetime : Timebase.t
(** 16 seconds, fixed (§3.3). *)

(** The three SegR types, mirroring the path-segment types (§3.3). *)
type seg_kind = Up | Down | Core

val seg_kind_of_segment : Segments.kind -> seg_kind
val pp_seg_kind : seg_kind Fmt.t

(** One version of a reservation: its number, granted bandwidth, and
    expiration time. *)
type version = { version : int; bw : Bandwidth.t; exp_time : Timebase.t }

val version_valid : version -> now:Timebase.t -> bool

(** A segment reservation as stored at each on-path AS and at the
    initiator. *)
type segr = {
  key : Ids.res_key;
  kind : seg_kind;
  path : Path.t;
  mutable active : version option;
  mutable pending : version option;
  mutable tokens : bytes list;
      (** At the initiator only: the per-AS tokens of Eq. (3) returned
          in the setup response (source first). Empty elsewhere. *)
  mutable allowed_ases : Ids.Asn_set.t option;
      (** Whitelist of ASes allowed to build EERs over this SegR when
          it is shared (Appendix C); [None] = no restriction set. *)
}

val segr_bw : segr -> now:Timebase.t -> Bandwidth.t
(** Bandwidth available on the SegR right now: its active version (a
    pending version holds no bandwidth until activated). *)

val segr_expired : segr -> now:Timebase.t -> bool

val activate : segr -> now:Timebase.t -> (unit, string) result
(** Promote the pending version to active (§4.2). Fails if there is no
    valid pending version. *)

(** An end-to-end reservation as stored at the source AS (gateway +
    CServ); on-path ASes keep only accounting aggregates, never
    per-EER state. *)
type eer = {
  key : Ids.res_key;
  path : Path.t;
  src_host : Ids.host;
  dst_host : Ids.host;
  segr_keys : Ids.res_key list;
      (** the 1–3 SegRs the EER was built over, in path order *)
  mutable versions : version list;  (** newest first; expired pruned lazily *)
}

val eer_valid_versions : eer -> now:Timebase.t -> version list
(** All currently valid versions, newest first. *)

val eer_bw : eer -> now:Timebase.t -> Bandwidth.t
(** The bandwidth the holder may use now: the {e maximum} over valid
    versions (§4.8 — versions share one monitored flow). *)

val eer_expired : eer -> now:Timebase.t -> bool

val eer_current_version : eer -> now:Timebase.t -> version option
(** Latest valid version — the one the gateway stamps into packets. *)

val add_eer_version : eer -> version -> (unit, string) result
(** Add a version from a successful setup/renewal; version numbers
    must strictly increase. *)

(** {1 Header-block construction} *)

val res_info_of_segr : segr -> version -> Packet.res_info
val res_info_of_eer : eer -> version -> Packet.res_info
val eer_info_of_eer : eer -> Packet.eer_info
