(** A full simulated Colibri deployment: one CServ, gateway, and
    border router per AS of a topology, wired together with DRKey key
    servers and a shared clock.

    This is the orchestration layer that moves control-plane requests
    hop-by-hop along reservation paths (Fig. 1a/1b) and data packets
    through the chain of border routers (Fig. 1c). Examples and
    integration tests drive it; every per-AS component it glues
    together is independently usable. *)

open Colibri_types
open Colibri_topology

type t

type as_node = {
  asn : Ids.asn;
  cserv : Cserv.t;
  gateway : Gateway.t;
  router : Router.t;
}

val create :
  ?policy_for:(Ids.asn -> Cserv.policy) ->
  ?router_monitoring:bool ->
  ?seed:int ->
  Topology.t ->
  t
(** Build a deployment over a topology: runs beaconing, instantiates
    per-AS services, and wires slow-side DRKey fetches to the remote
    key servers. [router_monitoring = false] builds bare-fast-path
    routers (no OFD / duplicate filter), as used by the speed
    benchmarks. *)

val clock : t -> Timebase.clock
val now : t -> Timebase.t
val engine : t -> Net.Engine.t
val topology : t -> Topology.t
val seg_db : t -> Segments.Db.t
val node : t -> Ids.asn -> as_node
val cserv : t -> Ids.asn -> Cserv.t
val gateway : t -> Ids.asn -> Gateway.t
val router : t -> Ids.asn -> Router.t

val advance : t -> float -> unit
(** Run the simulation engine forward by the given seconds. *)

(** {1 Segment-reservation orchestration} *)

type setup_error = { at : Ids.asn; reason : Protocol.deny_reason }

val pp_setup_error : setup_error Fmt.t

val setup_segr :
  ?renew:Ids.res_key ->
  t ->
  path:Path.t ->
  kind:Reservation.seg_kind ->
  max_bw:Bandwidth.t ->
  min_bw:Bandwidth.t ->
  (Reservation.segr, string) result
(** Set up (or renew) a segment reservation from the first AS of
    [path]: forward pass with per-AS admission, backward pass
    committing the path-wide minimum and collecting Eq. (3) tokens. *)

val activate_segr : t -> key:Ids.res_key -> (unit, string) result
(** Activate the pending version of a SegR at every on-path AS and at
    the initiator (§4.2). *)

val request_down_segr :
  ?allowed:Ids.Asn_set.t option ->
  t ->
  path:Path.t ->
  max_bw:Bandwidth.t ->
  min_bw:Bandwidth.t ->
  (Reservation.segr, string) result
(** Ask the first AS of a down segment to set up a down-SegR —
    down-SegRs are only created upon explicit request by the last AS
    (§3.3). The SegR is registered at the initiator's CServ and its
    description cached at the leaf. *)

(** {1 Route lookup and end-to-end reservations} *)

(** A usable chain of SegRs from source to destination: the spliced
    path plus the reservation keys in path order. *)
type eer_route = { path : Path.t; segr_keys : Ids.res_key list }

val lookup_eer_routes : t -> src:Ids.asn -> dst:Ids.asn -> eer_route list
(** Hierarchical lookup of Appendix C: own up-SegRs locally,
    down-SegRs from the destination's CServ cache, core-SegRs from the
    core AS where the up segment ends; results cached at the source.
    Shortest spliced path first. *)

val setup_eer :
  ?renew:Ids.res_key ->
  t ->
  route:eer_route ->
  src_host:Ids.host ->
  dst_host:Ids.host ->
  bw:Bandwidth.t ->
  (Reservation.eer, string) result
(** Set up (or renew) an end-to-end reservation along [route]; on
    success it is installed at the source AS's gateway (➎ in
    Fig. 1b). *)

val setup_eer_full :
  ?renew:Ids.res_key ->
  t ->
  route:eer_route ->
  src_host:Ids.host ->
  dst_host:Ids.host ->
  bw:Bandwidth.t ->
  (Reservation.eer * Reservation.version * bytes list, string) result
(** Like {!setup_eer} but also returns the version and the unsealed
    hop authenticators — used by tests and rogue-gateway attack
    scenarios. *)

val setup_eer_auto :
  t ->
  src:Ids.asn ->
  src_host:Ids.host ->
  dst:Ids.asn ->
  dst_host:Ids.host ->
  bw:Bandwidth.t ->
  (Reservation.eer, string) result
(** Look up routes and set up an EER over the shortest feasible one,
    trying alternatives on failure (path choice, §2.1). *)

(** {1 Data plane} *)

type delivery = {
  delivered : bool;
  dropped_at : (Ids.asn * Router.drop_reason) option;
  hops_traversed : int;
}

val send_data :
  t -> src:Ids.asn -> res_id:Ids.res_id -> payload_len:int ->
  (delivery, Gateway.drop_reason) result
(** Send one data packet over an EER: gateway processing at the source
    AS, then parse+validate+forward at every border router on the path
    (Fig. 1c). *)
