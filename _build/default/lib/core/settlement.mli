(** Neighbor-to-neighbor settlement accounting (§4.7, §9).

    Colibri admission is deliberately local: link capacity and pricing
    are agreed bilaterally between neighbors, so "billing can be
    implemented with scalable neighbor-to-neighbor settlements,
    similarly to today's AS peering agreements" (§9). Per neighboring
    AS this ledger accumulates committed reservation capacity
    (bandwidth × time — what a guarantee costs, billed whether used or
    not) and carried Colibri volume, priced by a bilateral contract,
    and produces per-period invoices. *)

open Colibri_types

(** A bilateral pricing contract with one neighbor, in abstract
    currency units. *)
type contract = {
  neighbor : Ids.asn;
  price_per_gbps_hour : float;  (** committed reservation capacity *)
  price_per_gb : float;  (** carried Colibri data volume *)
  colibri_share : float;  (** agreed Colibri fraction of the link (§3.4) *)
}

val default_contract : Ids.asn -> contract
(** 1 unit per Gbps·hour committed, 0.1 per GB carried, 80 % share. *)

type t

val create : clock:Timebase.clock -> Ids.asn -> t

val set_contract : t -> contract -> unit

val commitment_started :
  t -> neighbor:Ids.asn -> key:Ids.res_key -> version:int -> bw:Bandwidth.t -> unit
(** A reservation version of [bw] towards [neighbor] was granted; it
    accrues committed capacity until {!commitment_ended}. *)

val commitment_ended : t -> neighbor:Ids.asn -> key:Ids.res_key -> version:int -> unit
(** The version ended (expired, superseded, or torn down). Idempotent. *)

val carried : t -> neighbor:Ids.asn -> bytes:int -> unit
(** Data-plane report: Colibri bytes carried towards [neighbor]. *)

(** One invoice line. *)
type invoice = {
  neighbor : Ids.asn;
  period : Timebase.t * Timebase.t;
  committed_gbps_hours : float;
  carried_gb : float;
  amount : float;
}

val pp_invoice : invoice Fmt.t

val preview : t -> invoice list
(** Current invoices for all neighbors, open commitments accrued up to
    now, sorted by neighbor. *)

val close_period : t -> invoice list
(** Close the billing period: emit final invoices and reset counters;
    open commitments restart accruing in the new period. *)

val neighbors : t -> Ids.asn list

val on_segr_granted :
  t ->
  topo:Colibri_topology.Topology.t ->
  egress:Ids.iface ->
  key:Ids.res_key ->
  version:int ->
  bw:Bandwidth.t ->
  unit
(** Convenience wiring: bill a granted SegR version to the downstream
    neighbor of the egress link (the bilateral link contract of §4.7).
    Local egress (interface 0) bills nobody. *)
