(** End-host networking stack (§3.2).

    Colibri modifies the end-host stack (the SCION daemon) so that an
    application can explicitly request and renew EERs. This module
    models that stack for one host: it performs the SegR route lookup
    (Appendix C), sets up the EER, and — crucially — schedules
    automatic renewals ahead of every expiry on the simulation engine,
    so an application-level flow transparently outlives the 16-second
    EER lifetime (§4.2). Renewal requests adapt the bandwidth when the
    application changes its demand, and a failed renewal falls back to
    an alternative route (path choice, §2.1) before reporting an error.

    Any transport can run on top: the gateway drops packets exceeding
    the guaranteed bandwidth, which acts as the congestion signal; a
    transport integrated tightly (à la QUIC) simply pins its sending
    rate to {!flow_bw}. *)

open Colibri_types

type flow = {
  stack : t;
  mutable eer : Reservation.eer;
  mutable requested_bw : Bandwidth.t;
  mutable open_ : bool;
  mutable renewals : int;
  mutable renewal_failures : int;
  mutable sent : int;
  mutable delivered : int;
}

and t = {
  deployment : Deployment.t;
  asn : Ids.asn;
  host : Ids.host;
  renew_margin : Timebase.t; (* renew when this close to expiry *)
  mutable flows : flow list;
}

let create ?(renew_margin = 5.) (deployment : Deployment.t) ~(asn : Ids.asn)
    ~(host : Ids.host) : t =
  if renew_margin <= 1. || renew_margin >= Reservation.eer_lifetime then
    invalid_arg "Host_stack.create: renew_margin out of range";
  { deployment; asn; host; renew_margin; flows = [] }

let route_of (eer : Reservation.eer) : Deployment.eer_route =
  { path = eer.path; segr_keys = eer.segr_keys }

(* Renew [f], falling back to a fresh route lookup if the current
   route's SegRs lapsed. *)
let renew_flow (f : flow) ~(dst : Ids.asn) ~(dst_host : Ids.host) : bool =
  let d = f.stack.deployment in
  let attempt route =
    Deployment.setup_eer ~renew:f.eer.key d ~route ~src_host:f.stack.host ~dst_host
      ~bw:f.requested_bw
  in
  match attempt (route_of f.eer) with
  | Ok eer ->
      f.eer <- eer;
      f.renewals <- f.renewals + 1;
      true
  | Error _ -> (
      (* Path choice: retry over the alternatives. A renewal must keep
         the reservation key, which is bound to its path, so a new
         route means a fresh EER replacing the old one. *)
      match
        Deployment.setup_eer_auto d ~src:f.stack.asn ~src_host:f.stack.host ~dst
          ~dst_host ~bw:f.requested_bw
      with
      | Ok eer ->
          f.eer <- eer;
          f.renewals <- f.renewals + 1;
          true
      | Error _ ->
          f.renewal_failures <- f.renewal_failures + 1;
          false)

(* Schedule the next renewal tick for [f]. *)
let rec arm_renewal (f : flow) ~dst ~dst_host =
  let d = f.stack.deployment in
  let now = Deployment.now d in
  match Reservation.eer_current_version f.eer ~now with
  | None -> () (* lapsed; the flow is dead *)
  | Some v ->
      let fire_at = Float.max (now +. 0.01) (v.exp_time -. f.stack.renew_margin) in
      Net.Engine.schedule_at (Deployment.engine d) ~time:fire_at (fun () ->
          if f.open_ then begin
            ignore (renew_flow f ~dst ~dst_host);
            arm_renewal f ~dst ~dst_host
          end)

(** Open a reserved flow to [dst_host] in [dst]: looks up SegR routes,
    sets up the EER, and arms automatic renewal. *)
let open_flow (t : t) ~(dst : Ids.asn) ~(dst_host : Ids.host) ~(bw : Bandwidth.t) :
    (flow, string) result =
  match
    Deployment.setup_eer_auto t.deployment ~src:t.asn ~src_host:t.host ~dst
      ~dst_host ~bw
  with
  | Error e -> Error e
  | Ok eer ->
      let f =
        {
          stack = t;
          eer;
          requested_bw = bw;
          open_ = true;
          renewals = 0;
          renewal_failures = 0;
          sent = 0;
          delivered = 0;
        }
      in
      t.flows <- f :: t.flows;
      arm_renewal f ~dst ~dst_host;
      Ok f

(** Adjust the bandwidth the application wants; takes effect at the
    next renewal ("possibly adjust the bandwidth to shifting traffic
    demands", §4.2). *)
let set_bandwidth (f : flow) (bw : Bandwidth.t) = f.requested_bw <- bw

(** The bandwidth currently guaranteed to the flow — what a
    QUIC-style transport would pin its sending rate to (§3.2). *)
let flow_bw (f : flow) : Bandwidth.t =
  Reservation.eer_bw f.eer ~now:(Deployment.now f.stack.deployment)

type send_result = Delivered | Dropped_in_network | Dropped_at_gateway

(** Send one packet on the flow. *)
let send (f : flow) ~(payload_len : int) : send_result =
  if not f.open_ then Dropped_at_gateway
  else begin
    f.sent <- f.sent + 1;
    match
      Deployment.send_data f.stack.deployment ~src:f.stack.asn
        ~res_id:f.eer.key.res_id ~payload_len
    with
    | Ok { delivered = true; _ } ->
        f.delivered <- f.delivered + 1;
        Delivered
    | Ok _ -> Dropped_in_network
    | Error _ -> Dropped_at_gateway
  end

(** Close the flow: stops renewing; the EER simply expires (there is
    no early-teardown mechanism for EERs, §4.2). *)
let close (f : flow) =
  f.open_ <- false;
  f.stack.flows <- List.filter (fun g -> g != f) f.stack.flows

let renewals (f : flow) = f.renewals
let renewal_failures (f : flow) = f.renewal_failures
let delivered (f : flow) = f.delivered
let sent (f : flow) = f.sent
let is_open (f : flow) = f.open_
let open_flows (t : t) = List.length t.flows
