(** Colibri packet format (§4.3, Eq. (2)).

    {v
    Packet  = Path ‖ ResInfo ‖ EERInfo ‖ Ts ‖ V_0 ‖ … ‖ V_l ‖ Payload
    Path    = (In_0, Eg_0) ‖ … ‖ (In_l, Eg_l)
    ResInfo = SrcAS ‖ ResId ‖ Bw ‖ ExpT ‖ Ver
    EERInfo = SrcHost ‖ DstHost
    v}

    One format serves all Colibri control- and data-plane traffic; the
    [kind] flag distinguishes packets on segment reservations (where
    [EERInfo] is unused) from packets on end-to-end reservations. The
    wire encoding is fixed-width big-endian throughout, so MAC inputs
    are canonical. *)

open Colibri_types

type kind = Seg | Eer

type res_info = {
  src_as : Ids.asn;
  res_id : Ids.res_id;
  bw : Bandwidth.t;
  exp_time : Timebase.t;
  version : int;
}

type eer_info = { src_host : Ids.host; dst_host : Ids.host }

type t = {
  kind : kind;
  path : Path.t;
  res_info : res_info;
  eer_info : eer_info option; (* Some for EER data packets, None for SegR *)
  ts : Timebase.Ts.t;
  hvfs : bytes array; (* V_i, ℓ_hvf bytes each, one per on-path AS *)
  payload_len : int; (* payload carried (bytes); contents are opaque here *)
}

let res_key (p : t) : Ids.res_key =
  { src_as = p.res_info.src_as; res_id = p.res_info.res_id }

(** Hop-validation-field length ℓ_hvf (§4.5): 4 bytes, as in the
    paper; short static MACs are acceptable given the short lifetime of
    reservations. *)
let hvf_len = 4

(* -- Canonical encodings used both on the wire and as MAC inputs -- *)

let res_info_len = 32

let res_info_to_bytes (r : res_info) : bytes =
  let b = Bytes.create res_info_len in
  Bytes.blit (Ids.asn_to_bytes r.src_as) 0 b 0 8;
  Bytes.set_int32_be b 8 (Int32.of_int r.res_id);
  Bytes.set_int64_be b 12 (Int64.of_float (Float.round (Bandwidth.to_bps r.bw)));
  Bytes.set_int64_be b 20 (Int64.of_float (Float.round (r.exp_time *. 1e6)));
  Bytes.set_int32_be b 28 (Int32.of_int r.version);
  b

let res_info_of_bytes b ~off : res_info =
  {
    src_as = Ids.asn_of_bytes b ~off;
    res_id = Int32.to_int (Bytes.get_int32_be b (off + 8));
    bw = Bandwidth.of_bps (Int64.to_float (Bytes.get_int64_be b (off + 12)));
    exp_time = Int64.to_float (Bytes.get_int64_be b (off + 20)) /. 1e6;
    version = Int32.to_int (Bytes.get_int32_be b (off + 28));
  }

let eer_info_len = 8

let eer_info_to_bytes (e : eer_info) : bytes =
  let b = Bytes.create eer_info_len in
  Bytes.set_int32_be b 0 (Int32.of_int e.src_host.addr);
  Bytes.set_int32_be b 4 (Int32.of_int e.dst_host.addr);
  b

let eer_info_of_bytes b ~off : eer_info =
  {
    src_host = Ids.host (Int32.to_int (Bytes.get_int32_be b off));
    dst_host = Ids.host (Int32.to_int (Bytes.get_int32_be b (off + 4)));
  }

(* Header: magic(2) kind(1) hop_count(1) payload_len(4) ts(8)
           path(20·n) res_info(32) eer_info(8) hvfs(4·n) *)
let magic = 0xC01B
let fixed_header_len = 2 + 1 + 1 + 4 + 8

let header_len ~hops =
  fixed_header_len + (hops * Path.hop_byte_size) + res_info_len + eer_info_len
  + (hops * hvf_len)

(** Total wire size of the packet: header plus payload. This is the
    [PktSize] that Eq. (6) authenticates, so an AS flooding tiny or
    header-only packets is still accountable for their full cost. *)
let wire_size (p : t) : int = header_len ~hops:(Path.length p.path) + p.payload_len

type parse_error =
  | Truncated
  | Bad_magic
  | Bad_kind
  | Bad_hop_count
  | Bad_path of Path.error

let pp_parse_error ppf = function
  | Truncated -> Fmt.string ppf "truncated packet"
  | Bad_magic -> Fmt.string ppf "bad magic"
  | Bad_kind -> Fmt.string ppf "bad kind byte"
  | Bad_hop_count -> Fmt.string ppf "bad hop count"
  | Bad_path e -> Fmt.pf ppf "bad path: %a" Path.pp_error e

(** Serialize the header; the payload is represented by its length
    only (contents are opaque to Colibri processing). *)
let to_bytes (p : t) : bytes =
  let hops = Path.length p.path in
  let b = Bytes.make (header_len ~hops) '\000' in
  Bytes.set_uint16_be b 0 magic;
  Bytes.set_uint8 b 2 (match p.kind with Seg -> 0 | Eer -> 1);
  Bytes.set_uint8 b 3 hops;
  Bytes.set_int32_be b 4 (Int32.of_int p.payload_len);
  Bytes.set_int64_be b 8 (Int64.of_int (Timebase.Ts.to_int p.ts));
  let off = fixed_header_len in
  Bytes.blit (Path.to_bytes p.path) 0 b off (hops * Path.hop_byte_size);
  let off = off + (hops * Path.hop_byte_size) in
  Bytes.blit (res_info_to_bytes p.res_info) 0 b off res_info_len;
  let off = off + res_info_len in
  (match p.eer_info with
  | Some e -> Bytes.blit (eer_info_to_bytes e) 0 b off eer_info_len
  | None -> ());
  let off = off + eer_info_len in
  Array.iteri (fun i v -> Bytes.blit v 0 b (off + (i * hvf_len)) hvf_len) p.hvfs;
  b

let of_bytes (b : bytes) : (t, parse_error) result =
  let len = Bytes.length b in
  if len < fixed_header_len then Error Truncated
  else if Bytes.get_uint16_be b 0 <> magic then Error Bad_magic
  else begin
    match Bytes.get_uint8 b 2 with
    | (0 | 1) as kind_byte ->
        let hops = Bytes.get_uint8 b 3 in
        if hops < 1 then Error Bad_hop_count
        else if len < header_len ~hops then Error Truncated
        else begin
          let payload_len = Int32.to_int (Bytes.get_int32_be b 4) in
          let ts = Timebase.Ts.of_int (Int64.to_int (Bytes.get_int64_be b 8)) in
          let off = fixed_header_len in
          let path = Path.of_bytes b ~off ~count:hops in
          match Path.validate path with
          | Error e -> Error (Bad_path e)
          | Ok () ->
              let off = off + (hops * Path.hop_byte_size) in
              let res_info = res_info_of_bytes b ~off in
              let off = off + res_info_len in
              let kind = if kind_byte = 0 then Seg else Eer in
              let eer_info =
                match kind with Seg -> None | Eer -> Some (eer_info_of_bytes b ~off)
              in
              let off = off + eer_info_len in
              let hvfs =
                Array.init hops (fun i -> Bytes.sub b (off + (i * hvf_len)) hvf_len)
              in
              Ok { kind; path; res_info; eer_info; ts; hvfs; payload_len }
        end
    | _ -> Error Bad_kind
  end

let pp ppf (p : t) =
  Fmt.pf ppf "@[<h>%s %a bw=%a exp=%a v%d %a len=%d@]"
    (match p.kind with Seg -> "SEG" | Eer -> "EER")
    Ids.pp_res_key (res_key p) Bandwidth.pp p.res_info.bw Timebase.pp
    p.res_info.exp_time p.res_info.version Timebase.Ts.pp p.ts p.payload_len
