(** End-host networking stack (§3.2).

    Colibri modifies the end-host stack (the SCION daemon) so that an
    application can explicitly request and renew EERs. This module
    models that stack for one host: it performs the SegR route lookup
    (Appendix C), sets up the EER, and schedules automatic renewals
    ahead of every expiry, so an application-level flow transparently
    outlives the 16-second EER lifetime (§4.2). A failed renewal falls
    back to an alternative route (path choice, §2.1).

    Any transport can run on top: the gateway drops packets exceeding
    the guaranteed bandwidth, which acts as the congestion signal; a
    transport integrated tightly (à la QUIC) pins its sending rate to
    {!flow_bw}. *)

open Colibri_types

type t
(** One host's stack, bound to a deployment, an AS, and a host
    address. *)

type flow
(** An application flow backed by an auto-renewing EER. *)

val create : ?renew_margin:Timebase.t -> Deployment.t -> asn:Ids.asn -> host:Ids.host -> t
(** [renew_margin] (default 5 s) is how long before expiry a renewal
    is attempted; must lie strictly between 1 s and the EER
    lifetime. *)

val open_flow :
  t -> dst:Ids.asn -> dst_host:Ids.host -> bw:Bandwidth.t -> (flow, string) result
(** Look up SegR routes, set up the EER, and arm automatic renewal. *)

val set_bandwidth : flow -> Bandwidth.t -> unit
(** Adjust the demanded bandwidth; takes effect at the next renewal
    ("possibly adjust the bandwidth to shifting traffic demands",
    §4.2). *)

val flow_bw : flow -> Bandwidth.t
(** The bandwidth currently guaranteed to the flow. *)

type send_result = Delivered | Dropped_in_network | Dropped_at_gateway

val send : flow -> payload_len:int -> send_result

val close : flow -> unit
(** Stop renewing; the EER simply expires (there is no early-teardown
    mechanism for EERs, §4.2). *)

val renewals : flow -> int
val renewal_failures : flow -> int
val delivered : flow -> int
val sent : flow -> int
val is_open : flow -> bool
val open_flows : t -> int
