(** Neighbor-to-neighbor settlement accounting (§4.7, §9).

    Colibri's admission is deliberately local: "any two neighboring
    ASes agree on the bandwidth available for Colibri traffic on their
    inter-domain link and negotiate the pricing model. These typically
    long-term contractual agreements … are always bilateral to
    facilitate negotiation and billing" (§4.7); "billing can be
    implemented with scalable neighbor-to-neighbor settlements,
    similarly to today's AS peering agreements" (§9).

    This module is that management plane: per neighboring AS it
    accumulates {e reservation-seconds × bandwidth} (the committed
    resource, billed whether used or not — that is what a guarantee
    costs) and the actually carried reservation bytes, priced by a
    bilateral contract. An AS runs one ledger and feeds it from its
    CServ (grants/expiries) and its border routers (forwarded volume);
    invoices are then produced per neighbor and billing period. *)

open Colibri_types

(** A bilateral pricing contract with one neighbor. Prices are in
    abstract currency units; the defaults make invoices easy to read
    in tests (1 unit per Gbps-hour committed, 0.1 per GB carried). *)
type contract = {
  neighbor : Ids.asn;
  price_per_gbps_hour : float; (** committed reservation capacity *)
  price_per_gb : float; (** carried Colibri data volume *)
  colibri_share : float; (** agreed fraction of the link for Colibri (§3.4) *)
}

let default_contract neighbor =
  { neighbor; price_per_gbps_hour = 1.0; price_per_gb = 0.1; colibri_share = 0.80 }

(* Running account per neighbor. *)
type account = {
  contract : contract;
  mutable committed_gbps_s : float; (* Σ bandwidth × committed seconds *)
  mutable carried_bytes : int;
  mutable open_commitments : (Ids.res_key * int * float * Timebase.t) list;
      (* (reservation, version, gbps, started) still accruing *)
}

type t = {
  asn : Ids.asn;
  clock : Timebase.clock;
  accounts : account Ids.Asn_tbl.t;
  mutable period_start : Timebase.t;
}

let create ~(clock : Timebase.clock) (asn : Ids.asn) : t =
  { asn; clock; accounts = Ids.Asn_tbl.create 16; period_start = clock () }

let account (t : t) (neighbor : Ids.asn) : account =
  match Ids.Asn_tbl.find_opt t.accounts neighbor with
  | Some a -> a
  | None ->
      let a =
        {
          contract = default_contract neighbor;
          committed_gbps_s = 0.;
          carried_bytes = 0;
          open_commitments = [];
        }
      in
      Ids.Asn_tbl.replace t.accounts neighbor a;
      a

(** Install a negotiated contract (replaces the default). Open
    commitments keep accruing under the new prices from now on —
    settlement prices apply at invoice time. *)
let set_contract (t : t) (contract : contract) =
  let a = account t contract.neighbor in
  Ids.Asn_tbl.replace t.accounts contract.neighbor { a with contract }

(** Record that a reservation version of [bw] towards [neighbor] was
    granted; it accrues committed capacity until {!commitment_ended}
    or the given expiry, whichever the caller reports first. *)
let commitment_started (t : t) ~(neighbor : Ids.asn) ~(key : Ids.res_key)
    ~(version : int) ~(bw : Bandwidth.t) =
  let a = account t neighbor in
  a.open_commitments <-
    (key, version, Bandwidth.to_gbps bw, t.clock ()) :: a.open_commitments

(* Close one commitment, accruing its capacity-time. *)
let settle_commitment (t : t) (a : account) ~key ~version ~(until : Timebase.t) =
  let matches (k, v, _, _) = Ids.equal_res_key k key && v = version in
  (match List.find_opt matches a.open_commitments with
  | Some (_, _, gbps, started) ->
      a.committed_gbps_s <- a.committed_gbps_s +. (gbps *. Float.max 0. (until -. started))
  | None -> ());
  ignore t;
  a.open_commitments <- List.filter (fun c -> not (matches c)) a.open_commitments

(** The reservation version ended (expired, superseded, or torn down
    after a failed setup). *)
let commitment_ended (t : t) ~(neighbor : Ids.asn) ~(key : Ids.res_key)
    ~(version : int) =
  settle_commitment t (account t neighbor) ~key ~version ~until:(t.clock ())

(** Data-plane report: [bytes] of Colibri traffic carried towards
    [neighbor] (fed by the border router per forwarded packet, or in
    batches). *)
let carried (t : t) ~(neighbor : Ids.asn) ~(bytes : int) =
  let a = account t neighbor in
  a.carried_bytes <- a.carried_bytes + bytes

(** One line of an invoice. *)
type invoice = {
  neighbor : Ids.asn;
  period : Timebase.t * Timebase.t;
  committed_gbps_hours : float;
  carried_gb : float;
  amount : float;
}

let pp_invoice ppf (i : invoice) =
  let t0, t1 = i.period in
  Fmt.pf ppf "%a [%a–%a]: %.3f Gbps·h committed, %.3f GB carried → %.3f units"
    Ids.pp_asn i.neighbor Timebase.pp t0 Timebase.pp t1 i.committed_gbps_hours
    i.carried_gb i.amount

(* Build the invoice for one account as of [now], accruing open
   commitments up to [now] without closing them. *)
let invoice_of (t : t) (a : account) ~(now : Timebase.t) : invoice =
  let open_accrual =
    List.fold_left
      (fun acc (_, _, gbps, started) -> acc +. (gbps *. Float.max 0. (now -. started)))
      0. a.open_commitments
  in
  let gbps_hours = (a.committed_gbps_s +. open_accrual) /. 3600. in
  let gb = float_of_int a.carried_bytes /. 1e9 in
  {
    neighbor = a.contract.neighbor;
    period = (t.period_start, now);
    committed_gbps_hours = gbps_hours;
    carried_gb = gb;
    amount =
      (gbps_hours *. a.contract.price_per_gbps_hour) +. (gb *. a.contract.price_per_gb);
  }

(** Current (not yet closed) invoices for all neighbors. *)
let preview (t : t) : invoice list =
  let now = t.clock () in
  Ids.Asn_tbl.fold (fun _ a acc -> invoice_of t a ~now :: acc) t.accounts []
  |> List.sort (fun a b -> Ids.compare_asn a.neighbor b.neighbor)

(** Close the billing period: emit final invoices and reset counters.
    Open commitments are settled up to now and restart accruing in the
    new period. *)
let close_period (t : t) : invoice list =
  let now = t.clock () in
  let invoices = preview t in
  Ids.Asn_tbl.iter
    (fun _ a ->
      a.committed_gbps_s <- 0.;
      a.carried_bytes <- 0;
      a.open_commitments <-
        List.map (fun (k, v, gbps, _) -> (k, v, gbps, now)) a.open_commitments)
    t.accounts;
  t.period_start <- now;
  invoices

let neighbors (t : t) : Ids.asn list =
  Ids.Asn_tbl.fold (fun n _ acc -> n :: acc) t.accounts []

(** Convenience wiring: derive the settlement events of one granted
    SegR version at this AS. The committed capacity is billed to the
    {e downstream} neighbor of the egress link (the AS the traffic is
    handed to), matching the bilateral link contracts of §4.7. *)
let on_segr_granted (t : t) ~(topo : Colibri_topology.Topology.t)
    ~(egress : Ids.iface) ~(key : Ids.res_key) ~(version : int) ~(bw : Bandwidth.t)
    =
  if egress <> Ids.local_iface then
    match Colibri_topology.Topology.link_via topo t.asn egress with
    | Some link -> commitment_started t ~neighbor:link.remote_as ~key ~version ~bw
    | None -> ()
