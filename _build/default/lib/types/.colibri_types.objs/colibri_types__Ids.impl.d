lib/types/ids.ml: Bytes Fmt Hashtbl Int Int32 List Map Set
