lib/types/ids.ml: Bytes Fmt Hashtbl Int32 Map Set
