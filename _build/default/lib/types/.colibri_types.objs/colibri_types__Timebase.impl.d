lib/types/timebase.ml: Float Fmt Stdlib
