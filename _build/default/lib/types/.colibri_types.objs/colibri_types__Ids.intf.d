lib/types/ids.mli: Fmt Hashtbl Map Set
