lib/types/path.mli: Fmt Ids
