lib/types/bandwidth.mli: Fmt
