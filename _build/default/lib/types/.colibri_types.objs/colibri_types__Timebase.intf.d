lib/types/timebase.mli: Fmt
