lib/types/bandwidth.ml: Float Fmt Stdlib
