lib/types/path.ml: Bytes Fmt Ids Int32 List
