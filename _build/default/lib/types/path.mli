(** AS-level forwarding paths: the list of on-path ASes with their
    ingress–egress interface pairs (Eq. (2b)). At the source AS the
    ingress interface is {!Ids.local_iface} (0); at the destination AS
    the egress is 0. *)

type hop = { asn : Ids.asn; ingress : Ids.iface; egress : Ids.iface }

type t = hop list
(** Invariant (checked by {!validate}): non-empty; first hop has
    ingress 0; last hop has egress 0; intermediate interfaces
    non-zero; no repeated AS. *)

val hop : asn:Ids.asn -> ingress:Ids.iface -> egress:Ids.iface -> hop
val source : t -> Ids.asn
val destination : t -> Ids.asn
val length : t -> int
val ases : t -> Ids.asn list

type error =
  | Empty
  | Bad_source_ingress
  | Bad_destination_egress
  | Zero_transit_iface of Ids.asn
  | Repeated_as of Ids.asn

val pp_error : error Fmt.t

val validate : t -> (unit, error) result
(** Structural validation; run on every parsed packet. *)

val reverse : t -> t
(** Swap source and destination roles, flipping every interface pair —
    used to send replies along the same segment (Fig. 1a ➌). *)

val join : t -> t -> t
(** Concatenate two fragments at a shared AS: the last AS of the first
    must equal the first AS of the second; the joint AS keeps the
    first's ingress and the second's egress — how a transfer AS
    splices two SegRs (§4.1). Raises [Invalid_argument] otherwise. *)

val equal_hop : hop -> hop -> bool
val equal : t -> t -> bool
val pp_hop : hop Fmt.t
val pp : t Fmt.t

(** {1 Wire encoding} (20 bytes per hop) *)

val hop_byte_size : int
val hop_to_bytes : hop -> bytes
val hop_of_bytes : bytes -> off:int -> hop
val to_bytes : t -> bytes
val of_bytes : bytes -> off:int -> count:int -> t
