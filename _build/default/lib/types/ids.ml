(** Identifiers for isolation domains, autonomous systems, interfaces,
    hosts, and reservations.

    Identifiers follow the SCION conventions described in §2.2 of the
    paper: ASes are grouped into isolation domains (ISDs); inter-domain
    connections are identified by per-AS interface numbers that are
    unique within the AS; the pair [(source AS, reservation id)]
    uniquely identifies every reservation globally (§4.3). *)

type isd = int
(** Isolation-domain number. Strictly positive in valid topologies. *)

type asn = { isd : isd; num : int }
(** A globally unique AS identifier: ISD number plus AS number. *)

type iface = int
(** Interface identifier, unique within its AS. Interface [0] is
    reserved to denote "local" (traffic originating at or destined to
    this AS), matching SCION's convention for path extremities. *)

type host = { addr : int }
(** End-host address, unique inside its AS. *)

type res_id = int
(** Per-source-AS reservation number; the CServ allocates these
    monotonically (§4.3). *)

type res_key = { src_as : asn; res_id : res_id }
(** Globally unique reservation identifier: [(SrcAS, ResId)]. *)

let asn ~isd ~num = { isd; num }
let host addr = { addr }

let local_iface : iface = 0

let compare_asn (a : asn) (b : asn) =
  match compare a.isd b.isd with 0 -> compare a.num b.num | c -> c

let equal_asn a b = compare_asn a b = 0

let compare_res_key (a : res_key) (b : res_key) =
  match compare_asn a.src_as b.src_as with
  | 0 -> compare a.res_id b.res_id
  | c -> c

let equal_res_key a b = compare_res_key a b = 0

let hash_asn (a : asn) = Hashtbl.hash (a.isd, a.num)
let hash_res_key (k : res_key) = Hashtbl.hash (k.src_as.isd, k.src_as.num, k.res_id)

let pp_asn ppf (a : asn) = Fmt.pf ppf "%d-%d" a.isd a.num
let pp_host ppf (h : host) = Fmt.pf ppf "h%d" h.addr
let pp_res_key ppf (k : res_key) = Fmt.pf ppf "%a#%d" pp_asn k.src_as k.res_id

(** Encode an AS identifier to 8 bytes (big-endian ISD ‖ AS number),
    used as PRF input by DRKey and in packet headers. *)
let asn_to_bytes (a : asn) =
  let b = Bytes.create 8 in
  Bytes.set_int32_be b 0 (Int32.of_int a.isd);
  Bytes.set_int32_be b 4 (Int32.of_int a.num);
  b

let asn_of_bytes b ~off =
  {
    isd = Int32.to_int (Bytes.get_int32_be b off);
    num = Int32.to_int (Bytes.get_int32_be b (off + 4));
  }

module Asn_map = Map.Make (struct
  type t = asn

  let compare = compare_asn
end)

module Asn_set = Set.Make (struct
  type t = asn

  let compare = compare_asn
end)

module Res_key_map = Map.Make (struct
  type t = res_key

  let compare = compare_res_key
end)

module Asn_tbl = Hashtbl.Make (struct
  type t = asn

  let equal = equal_asn
  let hash = hash_asn
end)

module Res_key_tbl = Hashtbl.Make (struct
  type t = res_key

  let equal = equal_res_key
  let hash = hash_res_key
end)
