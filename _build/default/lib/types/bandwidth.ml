(** Bandwidth quantities.

    Stored as bits per second in a plain [float]; reservations in the
    paper range from fractions of a Gbps to 40 Gbps link capacities, so
    double precision is ample. All arithmetic used by the admission
    algorithm (§4.7) lives here so that units stay consistent. *)

type t = float (* bits per second *)

let zero = 0.
let of_bps x = x
let to_bps x = x
let of_kbps x = x *. 1e3
let of_mbps x = x *. 1e6
let of_gbps x = x *. 1e9
let to_gbps x = x /. 1e9
let to_mbps x = x /. 1e6

let add = ( +. )
let sub a b = Float.max 0. (a -. b)
let min = Float.min
let max = Float.max
let scale k x = k *. x

(** [div a b] is the ratio [a/b], or [0.] when [b = 0.]; used for the
    proportional-sharing steps of the admission algorithm where an
    all-zero demand must yield an all-zero allocation. *)
let div a b = if b = 0. then 0. else a /. b

let compare = Float.compare
let equal a b = Float.equal a b
let ( <= ) a b = Float.compare a b <= 0
let ( >= ) a b = Float.compare a b >= 0
let ( < ) a b = Float.compare a b < 0
let ( > ) a b = Float.compare a b > 0

(** Tolerant comparison for sums of float bandwidths: [a <=~ b] holds
    when [a] exceeds [b] by at most one part in 10^9 of [b] (absolute
    1e-3 bps floor), absorbing accumulation error in admission sums. *)
let ( <=~ ) a b =
  Stdlib.( <= ) (Float.compare a (b +. Float.max 1e-3 (1e-9 *. Float.abs b))) 0

let is_positive x = Stdlib.( > ) (Float.compare x 0.) 0

let pp ppf x =
  if Float.abs x >= 1e9 then Fmt.pf ppf "%.3f Gbps" (x /. 1e9)
  else if Float.abs x >= 1e6 then Fmt.pf ppf "%.3f Mbps" (x /. 1e6)
  else if Float.abs x >= 1e3 then Fmt.pf ppf "%.3f kbps" (x /. 1e3)
  else Fmt.pf ppf "%.0f bps" x
