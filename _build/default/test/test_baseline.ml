(** Tests for the IntServ- and DiffServ-style baselines, including the
    security failures that motivate Colibri (§1, §8). *)

open Colibri_types

let gbps = Bandwidth.of_gbps
let mbps = Bandwidth.of_mbps

(* ---------- IntServ ---------- *)

let intserv_admission () =
  let t = Baseline.Intserv.create ~capacity:(gbps 1.) ~share:0.8 () in
  (* 0.8 Gbps reservable: eight 100 Mbps flows fit, the ninth not. *)
  for i = 1 to 8 do
    match
      Baseline.Intserv.admit t ~id:{ src = i; dst = 100 } ~bw:(mbps 100.)
        ~exp_time:60. ~now:0.
    with
    | `Admitted -> ()
    | `Rejected -> Alcotest.failf "flow %d should fit" i
  done;
  (match
     Baseline.Intserv.admit t ~id:{ src = 9; dst = 100 } ~bw:(mbps 100.)
       ~exp_time:60. ~now:0.
   with
  | `Rejected -> ()
  | `Admitted -> Alcotest.fail "over-admission");
  Alcotest.(check int) "per-flow state grows" 8 (Baseline.Intserv.flow_count t);
  Alcotest.(check bool) "state bytes grow" true (Baseline.Intserv.state_bytes t > 0)

let intserv_soft_state_expiry () =
  let t = Baseline.Intserv.create ~capacity:(gbps 1.) () in
  ignore
    (Baseline.Intserv.admit t ~id:{ src = 1; dst = 2 } ~bw:(mbps 500.) ~exp_time:30.
       ~now:0.);
  (* After expiry the next admission sweeps the soft state. *)
  match
    Baseline.Intserv.admit t ~id:{ src = 2; dst = 2 } ~bw:(mbps 700.) ~exp_time:90.
      ~now:31.
  with
  | `Admitted -> Alcotest.(check int) "old state swept" 1 (Baseline.Intserv.flow_count t)
  | `Rejected -> Alcotest.fail "expired flow still booked"

let intserv_spoofing_succeeds () =
  (* The security failure Colibri fixes: a spoofed packet claiming an
     installed flow id receives reserved treatment. *)
  let t = Baseline.Intserv.create ~capacity:(gbps 1.) () in
  ignore
    (Baseline.Intserv.admit t ~id:{ src = 1; dst = 2 } ~bw:(mbps 100.) ~exp_time:60.
       ~now:0.);
  (match Baseline.Intserv.forward t ~id:{ src = 1; dst = 2 } ~bytes:1000 with
  | `Reserved -> () (* legitimate *)
  | `Best_effort -> Alcotest.fail "legitimate flow demoted");
  (* The attacker forges the same id from elsewhere: indistinguishable. *)
  match Baseline.Intserv.forward t ~id:{ src = 1; dst = 2 } ~bytes:1000 with
  | `Reserved -> () (* attack succeeds — the point of the test *)
  | `Best_effort -> Alcotest.fail "model should accept spoof (no authentication)"

(* ---------- DiffServ ---------- *)

let diffserv_priority_works_without_attack () =
  let e = Net.Engine.create () in
  let port = Baseline.Diffserv.create ~engine:e ~capacity:(mbps 8.) () in
  (* EF at 2 Mbps, BE at 10 Mbps (over-subscribed link). *)
  let feed dscp rate =
    let src =
      Net.Source.create ~engine:e ~rate ~packet_bytes:1000 ~emit:(fun bytes ->
          Baseline.Diffserv.send port ~dscp ~bytes ())
    in
    Net.Source.start src;
    src
  in
  let s1 = feed Baseline.Diffserv.Expedited (mbps 2.) in
  let s2 = feed Baseline.Diffserv.Default (mbps 10.) in
  Net.Engine.run e ~until:2.;
  Net.Source.stop s1;
  Net.Source.stop s2;
  let ef = Baseline.Diffserv.delivered_bytes port Baseline.Diffserv.Expedited in
  let ef_rate = 8. *. float_of_int ef /. 2. in
  Alcotest.(check bool) (Printf.sprintf "EF gets its 2 Mbps (%.2f)" (ef_rate /. 1e6))
    true
    (ef_rate > 1.9e6)

let diffserv_fails_under_marking_attack () =
  (* An attacker marks its flood as EF: the honest EF flow collapses —
     no admission, no authentication (§8: DiffServ "does not provide
     any guarantees"). *)
  let e = Net.Engine.create () in
  let port = Baseline.Diffserv.create ~engine:e ~capacity:(mbps 8.)
      ~queue_limit_bytes:20_000 () in
  let honest_delivered = ref 0 in
  let feed ?(count = fun _ -> ()) dscp rate =
    let src =
      Net.Source.create ~engine:e ~rate ~packet_bytes:1000 ~emit:(fun bytes ->
          Baseline.Diffserv.send port ~dscp ~bytes ~deliver:(fun () -> count bytes) ())
    in
    Net.Source.start src;
    src
  in
  let honest =
    feed ~count:(fun b -> honest_delivered := !honest_delivered + b)
      Baseline.Diffserv.Expedited (mbps 2.)
  in
  (* 40 Mbps attack, also marked EF. *)
  let attacker = feed Baseline.Diffserv.Expedited (mbps 40.) in
  Net.Engine.run e ~until:2.;
  Net.Source.stop honest;
  Net.Source.stop attacker;
  let honest_rate = 8. *. float_of_int !honest_delivered /. 2. in
  Alcotest.(check bool)
    (Printf.sprintf "honest EF degraded to %.2f Mbps" (honest_rate /. 1e6))
    true
    (honest_rate < 1.5e6)

let suite =
  [
    Alcotest.test_case "IntServ: admission and state growth" `Quick intserv_admission;
    Alcotest.test_case "IntServ: soft-state expiry" `Quick intserv_soft_state_expiry;
    Alcotest.test_case "IntServ: spoofing succeeds (insecure)" `Quick intserv_spoofing_succeeds;
    Alcotest.test_case "DiffServ: priority without attack" `Quick diffserv_priority_works_without_attack;
    Alcotest.test_case "DiffServ: fails under marking attack" `Quick diffserv_fails_under_marking_attack;
  ]
