(** Data-plane tests: gateway processing, border-router validation,
    and the full packet walk across a deployment — including the
    adversarial cases of §5 (bogus packets, replay, overuse,
    spoofing). *)

open Colibri_types
open Colibri_topology
open Colibri
module G = Topology_gen.Two_isd

let gbps = Bandwidth.of_gbps
let mbps = Bandwidth.of_mbps

(* A deployment with one EER from S(h1) to D(h2) ready to send. *)
let rig ?(bw = mbps 100.) () =
  let d = Deployment.create (Topology_gen.two_isd ()) in
  let db = Deployment.seg_db d in
  let up = List.hd (Segments.Db.up_segments db ~src:G.s) in
  let _ =
    Result.get_ok
      (Deployment.setup_segr d ~path:up.Segments.path ~kind:Reservation.Up
         ~max_bw:(gbps 2.) ~min_bw:(mbps 10.))
  in
  let down = List.hd (Segments.Db.down_segments db ~dst:G.d) in
  let _ =
    Result.get_ok
      (Deployment.request_down_segr d ~path:down.Segments.path ~max_bw:(gbps 2.)
         ~min_bw:(mbps 10.))
  in
  let core_src = Path.destination up.Segments.path in
  let core_dst = Path.source down.Segments.path in
  let core = List.hd (Segments.Db.core_segments db ~src:core_src ~dst:core_dst) in
  let _ =
    Result.get_ok
      (Deployment.setup_segr d ~path:core.Segments.path ~kind:Reservation.Core
         ~max_bw:(gbps 5.) ~min_bw:(mbps 10.))
  in
  let eer =
    Result.get_ok
      (Deployment.setup_eer_auto d ~src:G.s ~src_host:(Ids.host 1) ~dst:G.d
         ~dst_host:(Ids.host 2) ~bw)
  in
  (d, eer)

let packets_delivered_end_to_end () =
  let d, eer = rig () in
  for i = 1 to 20 do
    match Deployment.send_data d ~src:G.s ~res_id:eer.key.res_id ~payload_len:1000 with
    | Ok del ->
        Alcotest.(check bool) (Printf.sprintf "packet %d delivered" i) true del.delivered;
        Alcotest.(check int) "traversed all ASes" (Path.length eer.path) del.hops_traversed
    | Error e -> Alcotest.failf "gateway drop: %a" Gateway.pp_drop_reason e
  done

let gateway_unknown_reservation () =
  let d, _ = rig () in
  match Deployment.send_data d ~src:G.s ~res_id:999 ~payload_len:100 with
  | Error Gateway.Unknown_reservation -> ()
  | _ -> Alcotest.fail "expected Unknown_reservation"

let gateway_rate_limits () =
  (* A 1 Mbps EER cannot push 10 Mbps through the gateway: the token
     bucket drops the excess (deterministic monitoring, §4.8). *)
  let d, eer = rig ~bw:(mbps 1.) () in
  let sent = ref 0 and dropped = ref 0 in
  (* 1 Mbps ≈ 119 pkt/s of 1048-byte wire packets; try 10× for 1 s of
     simulated time by advancing the clock manually. *)
  for i = 1 to 1200 do
    Deployment.advance d (1. /. 1200.);
    ignore i;
    match Deployment.send_data d ~src:G.s ~res_id:eer.key.res_id ~payload_len:1000 with
    | Ok _ -> incr sent
    | Error Gateway.Rate_exceeded -> incr dropped
    | Error e -> Alcotest.failf "unexpected: %a" Gateway.pp_drop_reason e
  done;
  Alcotest.(check bool) (Printf.sprintf "excess dropped (%d/%d)" !dropped 1200) true
    (!dropped > 800);
  Alcotest.(check bool) "conforming share passes" true (!sent > 50)

let gateway_expired_reservation () =
  let d, eer = rig () in
  Deployment.advance d (Reservation.eer_lifetime +. 1.);
  match Deployment.send_data d ~src:G.s ~res_id:eer.key.res_id ~payload_len:100 with
  | Error Gateway.Expired -> ()
  | _ -> Alcotest.fail "expected Expired"

let router_rejects_forged_hvf () =
  (* §5.1 "bogus Colibri traffic": random authenticators are filtered. *)
  let d, eer = rig () in
  let pkt, _ =
    Result.get_ok (Gateway.send (Deployment.gateway d G.s) ~res_id:eer.key.res_id ~payload_len:0)
  in
  let forged = { pkt with Packet.hvfs = Array.map (fun _ -> Bytes.make 4 'x') pkt.Packet.hvfs } in
  let raw = Packet.to_bytes forged in
  let first_as = (List.hd eer.path).Path.asn in
  match Router.process_bytes (Deployment.router d first_as) ~raw ~payload_len:0 with
  | Error Router.Invalid_hvf -> ()
  | r ->
      Alcotest.failf "forged packet not dropped: %s"
        (match r with Ok _ -> "forwarded" | Error e -> Fmt.str "%a" Router.pp_drop_reason e)

let router_rejects_size_lie () =
  (* PktSize is authenticated (Eq. 6): a header claiming a smaller
     payload than actually carried fails validation — small-packet
     flooding cannot evade accounting (§4.8). *)
  let d, eer = rig () in
  let pkt, _ =
    Result.get_ok (Gateway.send (Deployment.gateway d G.s) ~res_id:eer.key.res_id ~payload_len:100)
  in
  let raw = Packet.to_bytes pkt in
  let first_as = (List.hd eer.path).Path.asn in
  (* The router derives actual size from the wire: lie about payload. *)
  match Router.process_bytes (Deployment.router d first_as) ~raw ~payload_len:1400 with
  | Error Router.Invalid_hvf -> ()
  | _ -> Alcotest.fail "size mismatch accepted"

let router_rejects_replay () =
  (* §5.1 framing: a captured packet replayed by an on-path adversary is
     suppressed by the duplicate filter. *)
  let d, eer = rig () in
  let pkt, _ =
    Result.get_ok (Gateway.send (Deployment.gateway d G.s) ~res_id:eer.key.res_id ~payload_len:0)
  in
  let raw = Packet.to_bytes pkt in
  let first_as = (List.hd eer.path).Path.asn in
  let r1 = Router.process_bytes (Deployment.router d first_as) ~raw ~payload_len:0 in
  Alcotest.(check bool) "original forwarded" true (Result.is_ok r1);
  match Router.process_bytes (Deployment.router d first_as) ~raw ~payload_len:0 with
  | Error Router.Duplicate -> ()
  | _ -> Alcotest.fail "replay not suppressed"

let router_rejects_expired_and_stale () =
  let d, eer = rig () in
  let pkt, _ =
    Result.get_ok (Gateway.send (Deployment.gateway d G.s) ~res_id:eer.key.res_id ~payload_len:0)
  in
  let raw = Packet.to_bytes pkt in
  let first_as = (List.hd eer.path).Path.asn in
  (* Beyond the freshness window but before expiry: stale. *)
  Deployment.advance d 10.;
  (match Router.process_bytes (Deployment.router d first_as) ~raw ~payload_len:0 with
  | Error Router.Stale_timestamp -> ()
  | _ -> Alcotest.fail "stale packet accepted");
  (* Beyond reservation expiry. *)
  Deployment.advance d 10.;
  match Router.process_bytes (Deployment.router d first_as) ~raw ~payload_len:0 with
  | Error Router.Expired_reservation -> ()
  | _ -> Alcotest.fail "expired packet accepted"

let router_blocklist_blocks () =
  let d, eer = rig () in
  let first_as = (List.hd eer.path).Path.asn in
  Monitor.Blocklist.block (Router.blocklist (Deployment.router d first_as)) G.s
    ~duration:None;
  match Deployment.send_data d ~src:G.s ~res_id:eer.key.res_id ~payload_len:0 with
  | Ok { delivered = false; dropped_at = Some (asn, Router.Blocked_source); _ } ->
      Alcotest.(check bool) "dropped at first AS" true (Ids.equal_asn asn first_as)
  | _ -> Alcotest.fail "blocklisted source not dropped"

let router_not_on_path () =
  let d, eer = rig () in
  let pkt, _ =
    Result.get_ok (Gateway.send (Deployment.gateway d G.s) ~res_id:eer.key.res_id ~payload_len:0)
  in
  let raw = Packet.to_bytes pkt in
  (* E (2-12) is not on the path. *)
  match Router.process_bytes (Deployment.router d G.e) ~raw ~payload_len:0 with
  | Error Router.Not_on_path -> ()
  | _ -> Alcotest.fail "off-path router processed packet"

let honest_flow_not_flagged () =
  (* An honest gateway already rate-limits its hosts, so downstream
     OFDs never flag a conforming flow. *)
  let d, eer = rig ~bw:(mbps 1.) () in
  let second_as = (List.nth eer.path 1).Path.asn in
  let transit_router = Deployment.router d second_as in
  let gw = Deployment.gateway d G.s in
  for _ = 1 to 2000 do
    Deployment.advance d 0.0005;
    match Gateway.send gw ~res_id:eer.key.res_id ~payload_len:1000 with
    | Ok (pkt, _) ->
        let raw = Packet.to_bytes pkt in
        ignore (Router.process_bytes transit_router ~raw ~payload_len:1000)
    | Error Gateway.Rate_exceeded -> ()
    | Error e -> Alcotest.failf "unexpected: %a" Gateway.pp_drop_reason e
  done;
  Alcotest.(check int) "honest flow not flagged" 0
    (Router.stats transit_router).suspects_flagged

let rogue_gateway_flagged_and_policed () =
  (* §4.8 / §5.1: a malicious source AS skips its monitoring duty — its
     gateway stamps packets without rate limiting (modeled by a rogue
     gateway with an enormous burst allowance). The transit AS's OFD
     flags the overusing flow probabilistically and escalates it to
     deterministic token-bucket policing, which limits it to its
     reserved bandwidth. *)
  let topo = Topology_gen.two_isd () in
  let d = Deployment.create topo in
  let db = Deployment.seg_db d in
  let up = List.hd (Segments.Db.up_segments db ~src:G.s) in
  let _ =
    Result.get_ok
      (Deployment.setup_segr d ~path:up.Segments.path ~kind:Reservation.Up
         ~max_bw:(gbps 2.) ~min_bw:(mbps 10.))
  in
  (* EER from S to its core Y1, 1 Mbps. *)
  let route = List.hd (Deployment.lookup_eer_routes d ~src:G.s ~dst:G.y1) in
  let eer, version, sigmas =
    Result.get_ok
      (Deployment.setup_eer_full d ~route ~src_host:(Ids.host 1)
         ~dst_host:(Ids.host 2) ~bw:(mbps 1.))
  in
  (* The rogue gateway: burst of 10^6 seconds ⇒ no effective limit. *)
  let rogue = Gateway.create ~burst:1e6 ~clock:(Deployment.clock d) G.s in
  (match Gateway.register rogue ~eer ~version ~sigmas with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let transit_as = (List.nth eer.path 1).Path.asn in
  let transit_router = Deployment.router d transit_as in
  let forwarded = ref 0 and policed = ref 0 in
  (* Flood ≈ 17 Mbps for 1 s through the 1 Mbps reservation. *)
  for _ = 1 to 2000 do
    Deployment.advance d 0.0005;
    match Gateway.send rogue ~res_id:eer.key.res_id ~payload_len:1000 with
    | Ok (pkt, _) -> (
        let raw = Packet.to_bytes pkt in
        match Router.process_bytes transit_router ~raw ~payload_len:1000 with
        | Ok _ -> incr forwarded
        | Error Router.Policed -> incr policed
        | Error e -> Alcotest.failf "unexpected drop: %a" Router.pp_drop_reason e)
    | Error e -> Alcotest.failf "rogue gateway dropped: %a" Gateway.pp_drop_reason e
  done;
  Alcotest.(check bool) "flow flagged as suspect" true
    ((Router.stats transit_router).suspects_flagged > 0);
  Alcotest.(check bool)
    (Printf.sprintf "excess policed (%d policed, %d forwarded)" !policed !forwarded)
    true
    (!policed > 1000);
  (* Persistent overuse is eventually confirmed and reported. *)
  Alcotest.(check bool) "overuse confirmed" true
    ((Router.stats transit_router).confirmed_overuse > 0);
  Alcotest.(check bool) "misbehavior reported to CServ" true
    (Cserv.is_denied (Deployment.cserv d transit_as) ~src:G.s)

let suite =
  [
    Alcotest.test_case "packets delivered end to end" `Quick packets_delivered_end_to_end;
    Alcotest.test_case "gateway: unknown reservation" `Quick gateway_unknown_reservation;
    Alcotest.test_case "gateway: rate limits (§4.8)" `Quick gateway_rate_limits;
    Alcotest.test_case "gateway: expired reservation" `Quick gateway_expired_reservation;
    Alcotest.test_case "router: rejects forged HVF (§5.1)" `Quick router_rejects_forged_hvf;
    Alcotest.test_case "router: rejects size lie" `Quick router_rejects_size_lie;
    Alcotest.test_case "router: rejects replay (§5.1)" `Quick router_rejects_replay;
    Alcotest.test_case "router: rejects expired and stale" `Quick router_rejects_expired_and_stale;
    Alcotest.test_case "router: blocklist" `Quick router_blocklist_blocks;
    Alcotest.test_case "router: not on path" `Quick router_not_on_path;
    Alcotest.test_case "OFD: honest flow not flagged" `Quick honest_flow_not_flagged;
    Alcotest.test_case "OFD: rogue gateway flagged and policed" `Quick rogue_gateway_flagged_and_policed;
  ]
