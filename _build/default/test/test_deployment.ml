(** Integration tests over the full deployment: route lookup, EER
    setup over one/two/three SegRs, seamless EER renewal, SegR version
    switch under live EERs, path choice on failure, and stale-cache
    invalidation (Appendix C). *)

open Colibri_types
open Colibri_topology
open Colibri
module G = Topology_gen.Two_isd

let gbps = Bandwidth.of_gbps
let mbps = Bandwidth.of_mbps

(* Deployment with the standard set of SegRs established:
   up S→Y1, core Y1→W1, down W1→D, plus up T→Y2 (alternate). *)
let rig () =
  let d = Deployment.create (Topology_gen.two_isd ()) in
  let db = Deployment.seg_db d in
  let setup_seg kind path max_bw =
    Result.get_ok
      (Deployment.setup_segr d ~path ~kind ~max_bw ~min_bw:(mbps 1.))
  in
  let up = List.hd (Segments.Db.up_segments db ~src:G.s) in
  let up_segr = setup_seg Reservation.Up up.Segments.path (gbps 2.) in
  let down = List.hd (Segments.Db.down_segments db ~dst:G.d) in
  let down_segr =
    Result.get_ok
      (Deployment.request_down_segr d ~path:down.Segments.path ~max_bw:(gbps 2.)
         ~min_bw:(mbps 1.))
  in
  let core_src = Path.destination up.Segments.path in
  let core_dst = Path.source down.Segments.path in
  let core = List.hd (Segments.Db.core_segments db ~src:core_src ~dst:core_dst) in
  let core_segr = setup_seg Reservation.Core core.Segments.path (gbps 5.) in
  (d, up_segr, core_segr, down_segr)

let route_lookup_spans_three_segrs () =
  let d, up, core, down = rig () in
  let routes = Deployment.lookup_eer_routes d ~src:G.s ~dst:G.d in
  Alcotest.(check bool) "route found" true (routes <> []);
  let r = List.hd routes in
  Alcotest.(check int) "three SegRs" 3 (List.length r.segr_keys);
  Alcotest.(check bool) "keys in path order" true
    (List.for_all2 Ids.equal_res_key r.segr_keys [ up.key; core.key; down.key ]);
  Alcotest.(check bool) "spliced path valid" true (Path.validate r.path = Ok ());
  Alcotest.(check bool) "ends at D" true (Ids.equal_asn (Path.destination r.path) G.d)

let eer_over_single_segr () =
  let d, up, _, _ = rig () in
  let routes = Deployment.lookup_eer_routes d ~src:G.s ~dst:G.y1 in
  Alcotest.(check bool) "leaf→core route" true (routes <> []);
  let r = List.hd routes in
  Alcotest.(check int) "one SegR" 1 (List.length r.segr_keys);
  Alcotest.(check bool) "it is the up SegR" true
    (Ids.equal_res_key (List.hd r.segr_keys) up.key);
  match
    Deployment.setup_eer d ~route:r ~src_host:(Ids.host 1) ~dst_host:(Ids.host 5)
      ~bw:(mbps 10.)
  with
  | Ok eer ->
      Alcotest.(check int) "short path" 3 (Path.length eer.path)
  | Error e -> Alcotest.fail e

let eer_renewal_seamless () =
  let d, _, _, _ = rig () in
  let eer =
    Result.get_ok
      (Deployment.setup_eer_auto d ~src:G.s ~src_host:(Ids.host 1) ~dst:G.d
         ~dst_host:(Ids.host 2) ~bw:(mbps 100.))
  in
  (* Traffic flows on v1. *)
  let send () = Deployment.send_data d ~src:G.s ~res_id:eer.key.res_id ~payload_len:500 in
  (match send () with
  | Ok { delivered = true; _ } -> ()
  | _ -> Alcotest.fail "v1 traffic failed");
  (* Renew shortly before expiry: v2 coexists with v1 (§4.2). *)
  Deployment.advance d 10.;
  let route : Deployment.eer_route = { path = eer.path; segr_keys = eer.segr_keys } in
  let eer2 =
    Result.get_ok
      (Deployment.setup_eer ~renew:eer.key d ~route ~src_host:(Ids.host 1)
         ~dst_host:(Ids.host 2) ~bw:(mbps 100.))
  in
  Alcotest.(check bool) "same reservation" true (Ids.equal_res_key eer2.key eer.key);
  Alcotest.(check int) "two live versions" 2
    (List.length (Reservation.eer_valid_versions eer2 ~now:(Deployment.now d)));
  (* Past v1 expiry, traffic continues over v2: no interruption. *)
  Deployment.advance d 10.;
  (match send () with
  | Ok { delivered = true; _ } -> ()
  | Ok { dropped_at = Some (a, r); _ } ->
      Alcotest.failf "dropped at %a: %a" Ids.pp_asn a Router.pp_drop_reason r
  | Ok _ -> Alcotest.fail "not delivered"
  | Error e -> Alcotest.failf "gateway: %a" Gateway.pp_drop_reason e);
  (* Past v2 expiry, the reservation lapses. *)
  Deployment.advance d 20.;
  match send () with
  | Error Gateway.Expired | Error Gateway.Unknown_reservation -> ()
  | _ -> Alcotest.fail "expired EER still usable"

let segr_version_switch_under_live_eers () =
  (* §4.2: EERs are not affected by a version change of their SegR. *)
  let d, up, _, _ = rig () in
  let route = List.hd (Deployment.lookup_eer_routes d ~src:G.s ~dst:G.y1) in
  let eer =
    Result.get_ok
      (Deployment.setup_eer d ~route ~src_host:(Ids.host 1) ~dst_host:(Ids.host 9)
         ~bw:(mbps 10.))
  in
  (* Renew + activate the up-SegR while the EER lives. *)
  let _ =
    Result.get_ok
      (Deployment.setup_segr ~renew:up.key d ~path:up.path ~kind:Reservation.Up
         ~max_bw:(gbps 1.) ~min_bw:(mbps 1.))
  in
  (match Deployment.activate_segr d ~key:up.key with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* EER traffic still flows: σ_i depend only on the EER, not the SegR
     version. *)
  match Deployment.send_data d ~src:G.s ~res_id:eer.key.res_id ~payload_len:200 with
  | Ok { delivered = true; _ } -> ()
  | Ok { dropped_at = Some (a, r); _ } ->
      Alcotest.failf "dropped at %a: %a" Ids.pp_asn a Router.pp_drop_reason r
  | _ -> Alcotest.fail "EER broken by SegR version switch"

let eer_denied_when_segr_full () =
  let d, _, _, _ = rig () in
  (* The up SegR holds 2 Gbps: a 1.5 Gbps EER fits, a second does not
     (core segr 5 Gbps is not the bottleneck). *)
  let route = List.hd (Deployment.lookup_eer_routes d ~src:G.s ~dst:G.d) in
  (match
     Deployment.setup_eer d ~route ~src_host:(Ids.host 1) ~dst_host:(Ids.host 2)
       ~bw:(gbps 1.5)
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  match
    Deployment.setup_eer d ~route ~src_host:(Ids.host 3) ~dst_host:(Ids.host 2)
      ~bw:(gbps 1.)
  with
  | Error msg ->
      Alcotest.(check bool) "denial mentions bandwidth" true
        (Astring.String.is_infix ~affix:"insufficient" msg
        || Astring.String.is_infix ~affix:"bandwidth" msg)
  | Ok _ -> Alcotest.fail "over-allocation of the SegR"

let path_choice_on_failure () =
  (* §2.1 path choice: when the reservation cannot be met on the first
     route, the source AS tries an alternative. We create two up-SegRs
     (via Y1 and via Y2-route through X1's second provider); the first
     is too small for the EER, so setup succeeds over the second. *)
  let d = Deployment.create (Topology_gen.two_isd ()) in
  let db = Deployment.seg_db d in
  let ups = Segments.Db.up_segments db ~src:G.s in
  Alcotest.(check bool) "two up segments available" true (List.length ups >= 2);
  (* Small SegR on the shortest up segment, large one on the other. *)
  let u1 = List.nth ups 0 and u2 = List.nth ups 1 in
  let _small =
    Result.get_ok
      (Deployment.setup_segr d ~path:u1.Segments.path ~kind:Reservation.Up
         ~max_bw:(mbps 50.) ~min_bw:(mbps 1.))
  in
  let _large =
    Result.get_ok
      (Deployment.setup_segr d ~path:u2.Segments.path ~kind:Reservation.Up
         ~max_bw:(gbps 1.) ~min_bw:(mbps 1.))
  in
  (* Destination: the core AS at the top of u2. *)
  let dst = Path.destination u2.Segments.path in
  let routes = Deployment.lookup_eer_routes d ~src:G.s ~dst in
  Alcotest.(check bool) "multiple routes" true (List.length routes >= 1);
  match
    Deployment.setup_eer_auto d ~src:G.s ~src_host:(Ids.host 1) ~dst
      ~dst_host:(Ids.host 2) ~bw:(mbps 200.)
  with
  | Ok eer ->
      Alcotest.(check bool) "used a route" true (List.length eer.segr_keys >= 1)
  | Error e -> Alcotest.failf "no alternative used: %s" e

let stale_cached_segr_invalidated () =
  let d, _, _, down = rig () in
  (* Build a route, then let every SegR expire; the EER setup must fail
     with an expiry signal and the stale entry must leave the cache. *)
  let routes = Deployment.lookup_eer_routes d ~src:G.s ~dst:G.d in
  let r = List.hd routes in
  Deployment.advance d (Reservation.segr_lifetime +. 1.);
  (match
     Deployment.setup_eer d ~route:r ~src_host:(Ids.host 1) ~dst_host:(Ids.host 2)
       ~bw:(mbps 10.)
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "EER over expired SegR accepted");
  ignore down;
  (* Lookup now offers nothing (expired everywhere). *)
  Alcotest.(check (list int)) "no stale routes" []
    (List.map (fun _ -> 0) (Deployment.lookup_eer_routes d ~src:G.s ~dst:G.d))

let destination_policy_refuses () =
  let policy_for asn =
    if Ids.equal_asn asn G.d then
      { Cserv.default_policy with accept_incoming = (fun _ _ -> false) }
    else Cserv.default_policy
  in
  let d = Deployment.create ~policy_for (Topology_gen.two_isd ()) in
  let db = Deployment.seg_db d in
  let up = List.hd (Segments.Db.up_segments db ~src:G.s) in
  let _ =
    Result.get_ok
      (Deployment.setup_segr d ~path:up.Segments.path ~kind:Reservation.Up
         ~max_bw:(gbps 1.) ~min_bw:(mbps 1.))
  in
  let down = List.hd (Segments.Db.down_segments db ~dst:G.d) in
  let _ =
    Result.get_ok
      (Deployment.request_down_segr d ~path:down.Segments.path ~max_bw:(gbps 1.)
         ~min_bw:(mbps 1.))
  in
  let core_src = Path.destination up.Segments.path in
  let core_dst = Path.source down.Segments.path in
  let core = List.hd (Segments.Db.core_segments db ~src:core_src ~dst:core_dst) in
  let _ =
    Result.get_ok
      (Deployment.setup_segr d ~path:core.Segments.path ~kind:Reservation.Core
         ~max_bw:(gbps 1.) ~min_bw:(mbps 1.))
  in
  match
    Deployment.setup_eer_auto d ~src:G.s ~src_host:(Ids.host 1) ~dst:G.d
      ~dst_host:(Ids.host 2) ~bw:(mbps 10.)
  with
  | Error msg ->
      Alcotest.(check bool) "destination refused" true
        (Astring.String.is_infix ~affix:"destination" msg
        || Astring.String.is_infix ~affix:"refused" msg)
  | Ok _ -> Alcotest.fail "destination policy ignored"

let source_policy_caps_host_bw () =
  let policy_for asn =
    if Ids.equal_asn asn G.s then
      { Cserv.default_policy with max_eer_bw = mbps 50. }
    else Cserv.default_policy
  in
  let d = Deployment.create ~policy_for (Topology_gen.two_isd ()) in
  let db = Deployment.seg_db d in
  let up = List.hd (Segments.Db.up_segments db ~src:G.s) in
  let _ =
    Result.get_ok
      (Deployment.setup_segr d ~path:up.Segments.path ~kind:Reservation.Up
         ~max_bw:(gbps 1.) ~min_bw:(mbps 1.))
  in
  let route = List.hd (Deployment.lookup_eer_routes d ~src:G.s ~dst:G.y1) in
  (match
     Deployment.setup_eer d ~route ~src_host:(Ids.host 1) ~dst_host:(Ids.host 2)
       ~bw:(mbps 100.)
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "host exceeded its policy cap");
  match
    Deployment.setup_eer d ~route ~src_host:(Ids.host 1) ~dst_host:(Ids.host 2)
      ~bw:(mbps 40.)
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "within-cap request refused: %s" e

let renewal_renegotiates_bandwidth () =
  (* §4.2: "an AS on the path may also wish to reduce an EER's
     bandwidth". We shrink the underlying SegR via renewal+activation;
     the EER's next renewal is then granted only what still fits,
     instead of being denied outright. *)
  let d = Deployment.create (Topology_gen.two_isd ()) in
  let db = Deployment.seg_db d in
  let up = List.hd (Segments.Db.up_segments db ~src:G.s) in
  let segr =
    Result.get_ok
      (Deployment.setup_segr d ~path:up.Segments.path ~kind:Reservation.Up
         ~max_bw:(gbps 1.) ~min_bw:(mbps 1.))
  in
  let route = List.hd (Deployment.lookup_eer_routes d ~src:G.s ~dst:G.y1) in
  let eer =
    Result.get_ok
      (Deployment.setup_eer d ~route ~src_host:(Ids.host 1) ~dst_host:(Ids.host 2)
         ~bw:(mbps 800.))
  in
  (* The AS shrinks the SegR to 500 Mbps (demand shifted elsewhere). *)
  let _ =
    Result.get_ok
      (Deployment.setup_segr ~renew:segr.key d ~path:segr.path ~kind:Reservation.Up
         ~max_bw:(mbps 500.) ~min_bw:(mbps 1.))
  in
  (match Deployment.activate_segr d ~key:segr.key with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* Renewal at the old 800 Mbps: granted, but re-negotiated down. *)
  Deployment.advance d 2.;
  let renewed =
    Result.get_ok
      (Deployment.setup_eer ~renew:eer.key d ~route ~src_host:(Ids.host 1)
         ~dst_host:(Ids.host 2) ~bw:(mbps 800.))
  in
  let now = Deployment.now d in
  (match Reservation.eer_current_version renewed ~now with
  | Some v ->
      Alcotest.(check bool)
        (Fmt.str "renewed at the SegR's new size (%a)" Bandwidth.pp v.bw)
        true
        (Bandwidth.to_bps v.bw <= 500e6 +. 1. && Bandwidth.to_bps v.bw > 0.)
  | None -> Alcotest.fail "no current version");
  (* A fresh setup at 800 Mbps is still strictly denied. *)
  match
    Deployment.setup_eer d ~route ~src_host:(Ids.host 3) ~dst_host:(Ids.host 2)
      ~bw:(mbps 800.)
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "strict setup should not be partial"

let suite =
  [
    Alcotest.test_case "route lookup spans three SegRs" `Quick route_lookup_spans_three_segrs;
    Alcotest.test_case "renewal renegotiates bandwidth (§4.2)" `Quick renewal_renegotiates_bandwidth;
    Alcotest.test_case "EER over a single SegR" `Quick eer_over_single_segr;
    Alcotest.test_case "EER renewal is seamless (§4.2)" `Quick eer_renewal_seamless;
    Alcotest.test_case "SegR version switch under live EERs" `Quick segr_version_switch_under_live_eers;
    Alcotest.test_case "EER denied when SegR full" `Quick eer_denied_when_segr_full;
    Alcotest.test_case "path choice on failure (§2.1)" `Quick path_choice_on_failure;
    Alcotest.test_case "stale cached SegR invalidated (App. C)" `Quick stale_cached_segr_invalidated;
    Alcotest.test_case "destination policy refuses" `Quick destination_policy_refuses;
    Alcotest.test_case "source policy caps host bandwidth" `Quick source_policy_caps_host_bw;
  ]
