(* Fixture: must trigger [hot-path-exn] (R2) — raising on the
   per-packet path of a monitor module. *)

let admit tokens ~need =
  if need < 0 then invalid_arg "bucket: negative packet size";
  tokens >= need
