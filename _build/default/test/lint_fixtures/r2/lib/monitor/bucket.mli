val admit : float -> need:float -> bool
