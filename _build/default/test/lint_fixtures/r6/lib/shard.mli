val shard_of : int -> shards:int -> int
