type cache

val bucket : Ids.asn -> width:int -> int
