val now : unit -> float
