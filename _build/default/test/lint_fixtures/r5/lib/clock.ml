(* Fixture: must trigger [nondet] (R5) — wall-clock time leaking into
   lib/ breaks simulation determinism. *)

let now () = Unix.gettimeofday ()
