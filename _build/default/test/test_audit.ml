(** Randomized invariant auditing: drive the memoizing admission
    structures ({!Admission.Seg}, {!Admission.Eer}, {!Distributed}) and
    the monitor's {!Monitor.Token_bucket} through QCheck-generated
    admit/renew/remove/expire sequences, and after {e every} single
    operation recompute all memoized aggregates from scratch via
    [audit] — any drift between the incremental state and the
    recomputed truth fails the property. Separate unit tests check
    that a deliberately corrupted aggregate is detected. *)

open Colibri_types
open Colibri

let gbps = Bandwidth.of_gbps
let mbps = Bandwidth.of_mbps
let asn n = Ids.asn ~isd:1 ~num:n
let key src id : Ids.res_key = { src_as = asn src; res_id = id }

let check_clean what errs =
  match errs with
  | [] -> true
  | errs ->
      QCheck2.Test.fail_reportf "%s audit found drift:@.%a" what
        Fmt.(list ~sep:(any "@.") string)
        errs

(* --- Admission.Seg ------------------------------------------------- *)

(* Heterogeneous capacities so the three demand-adjustment layers
   (ingress cap, tube cap, per-source cap) all actually bind. *)
let seg_capacity iface = gbps (float_of_int (2 + (iface mod 3)))

let run_seg_sequence seed =
  let rng = Random.State.make [| seed; 0xA0D17 |] in
  let t = Admission.Seg.create ~capacity:seg_capacity ~share:0.8 () in
  let live = ref [] in
  for step = 1 to 50 do
    let now = float_of_int step in
    (match Random.State.int rng 10 with
    | 0 | 1 | 2 | 3 | 4 | 5 ->
        (* Admit: strictly positive demand, small key space so renewals
           (same key, higher version) and collisions are common. *)
        let k = key (1 + Random.State.int rng 5) (1 + Random.State.int rng 8) in
        let version = 1 + Random.State.int rng 3 in
        let demand = mbps (1. +. Random.State.float rng 3000.) in
        (match
           Admission.Seg.admit t ~key:k ~version
             ~src:(asn (1 + Random.State.int rng 4))
             ~ingress:(1 + Random.State.int rng 3)
             ~egress:(1 + Random.State.int rng 3)
             ~demand
             ~min_bw:(mbps (Random.State.float rng 5.))
             ~exp_time:(now +. 100.) ~now
         with
        | Admission.Granted _ -> live := (k, version) :: !live
        | Admission.Denied _ -> ())
    | 6 | 7 -> (
        (* Renewal backward pass: shrink a live grant to the path-wide
           minimum (a fraction of the local grant). *)
        match !live with
        | [] -> ()
        | l ->
            let k, version = List.nth l (Random.State.int rng (List.length l)) in
            (match Admission.Seg.granted_of t ~key:k ~version with
            | Some g ->
                let granted =
                  Bandwidth.scale (0.1 +. Random.State.float rng 0.9) g
                in
                ignore (Admission.Seg.set_granted t ~key:k ~version ~granted)
            | None -> ()))
    | 8 -> (
        (* Cleanup of a live version. *)
        match !live with
        | [] -> ()
        | l ->
            let k, version = List.nth l (Random.State.int rng (List.length l)) in
            Admission.Seg.remove t ~key:k ~version;
            live := List.filter (fun e -> e <> (k, version)) !live)
    | _ ->
        (* Remove of a (likely) absent version must be a clean no-op. *)
        Admission.Seg.remove t
          ~key:(key (1 + Random.State.int rng 9) (1 + Random.State.int rng 20))
          ~version:(1 + Random.State.int rng 3));
    ignore (check_clean "Seg" (Admission.Seg.audit t))
  done;
  true

let prop_seg_audit_clean =
  QCheck2.Test.make ~name:"seg: audit stays empty under random sequences"
    ~count:200
    QCheck2.Gen.(1 -- 1_000_000)
    run_seg_sequence

(* --- Admission.Eer ------------------------------------------------- *)

let run_eer_sequence seed =
  let rng = Random.State.make [| seed; 0xEE12 |] in
  let t = Admission.Eer.create () in
  let segr i : Ids.res_key = { src_as = asn (100 + i); res_id = i } in
  let now = ref 0. in
  for _step = 1 to 50 do
    now := !now +. Random.State.float rng 3.;
    let flow = key (1 + Random.State.int rng 6) (1 + Random.State.int rng 12) in
    let version = 1 + Random.State.int rng 3 in
    (match Random.State.int rng 10 with
    | 0 | 1 | 2 | 3 | 4 | 5 | 6 ->
        let s1 = segr (1 + Random.State.int rng 3) in
        let segrs =
          if Random.State.bool rng then [ (s1, gbps 1.) ]
          else [ (s1, gbps 1.); (segr 4, gbps 2.) ]
        in
        let via_up =
          (* Transfer-AS admission: a core SegR shared between up-SegRs
             (§4.7), exercising the pair-competition aggregates. *)
          if Random.State.int rng 3 = 0 then
            Some (segr 9, segr (1 + Random.State.int rng 2), gbps 1.)
          else None
        in
        ignore
          (Admission.Eer.admit
             ~partial:(Random.State.bool rng)
             t ~key:flow ~version ~segrs ~via_up
             ~demand:(mbps (1. +. Random.State.float rng 400.))
             ~exp_time:(!now +. Random.State.float rng 20.)
             ~now:!now)
    | 7 | 8 ->
        (* Failed-setup cleanup: also hits absent (key, version). *)
        Admission.Eer.remove_version t ~key:flow ~version ~now:!now
    | _ ->
        (* Let time pass so versions expire (step + expiry is the
           "expire" op of the sequence). *)
        now := !now +. 25.);
    ignore (check_clean "Eer" (Admission.Eer.audit t))
  done;
  true

let prop_eer_audit_clean =
  QCheck2.Test.make ~name:"eer: audit stays empty under random sequences"
    ~count:200
    QCheck2.Gen.(1 -- 1_000_000)
    run_eer_sequence

(* --- Distributed --------------------------------------------------- *)

let run_distributed_sequence seed =
  let rng = Random.State.make [| seed; 0xD157 |] in
  let t = Distributed.create ~capacity:seg_capacity () in
  let segr i : Ids.res_key = { src_as = asn (100 + i); res_id = i } in
  for step = 1 to 40 do
    let now = float_of_int step in
    let ingress = 1 + Random.State.int rng 4 in
    let s = segr (1 + Random.State.int rng 5) in
    ignore
      (Distributed.admit_eer t
         ~key:(key (1 + Random.State.int rng 6) step)
         ~version:(1 + Random.State.int rng 2)
         ~segrs:[ (s, gbps 1.) ]
         ~via_up:None ~segr_ingress:ingress
         ~demand:(mbps (1. +. Random.State.float rng 200.))
         ~exp_time:(now +. 30.) ~now);
    ignore (check_clean "Distributed" (Distributed.audit t))
  done;
  true

let prop_distributed_audit_clean =
  QCheck2.Test.make ~name:"distributed: audit stays empty under random sequences"
    ~count:150
    QCheck2.Gen.(1 -- 1_000_000)
    run_distributed_sequence

(* --- Monitor.Token_bucket ------------------------------------------ *)

let run_bucket_sequence seed =
  let rng = Random.State.make [| seed; 0xB0C4E7 |] in
  let rate = mbps (10. +. Random.State.float rng 990.) in
  let burst = 0.05 +. Random.State.float rng 0.15 in
  let b = Monitor.Token_bucket.create ~rate ~burst ~now:0. in
  let now = ref 0. in
  for _ = 1 to 60 do
    now := !now +. Random.State.float rng 0.01;
    (if Random.State.int rng 12 = 0 then
       Monitor.Token_bucket.set_rate b
         ~rate:(mbps (10. +. Random.State.float rng 990.))
         ~now:!now
     else
       ignore
         (Monitor.Token_bucket.admit b ~now:!now
            ~bytes:(Random.State.int rng 3000)));
    ignore (check_clean "Token_bucket" (Monitor.Token_bucket.audit b))
  done;
  true

let prop_bucket_audit_clean =
  QCheck2.Test.make ~name:"token bucket: audit stays empty under random sequences"
    ~count:150
    QCheck2.Gen.(1 -- 1_000_000)
    run_bucket_sequence

(* --- Hot-path regressions, randomized ------------------------------ *)

(* Full-range keys, biased toward the values that used to break the
   [abs … mod] index derivation ([abs min_int = min_int]). *)
let adversarial_int =
  QCheck2.Gen.(
    oneof
      [ int; oneofl [ min_int; max_int; min_int + 1; max_int - 1; 0; -1 ] ])

let prop_dup_replay_caught =
  QCheck2.Test.make
    ~name:"dup filter: total over full-range keys, replays caught" ~count:100
    QCheck2.Gen.(list_size (1 -- 50) adversarial_int)
    (fun keys ->
      let keys = List.sort_uniq compare keys in
      let f =
        Monitor.Duplicate_filter.create ~expected:10_000 ~fp_rate:1e-4
          ~window:5. ~now:0.
      in
      List.iter
        (fun k -> ignore (Monitor.Duplicate_filter.check_and_insert f ~now:0.1 k))
        keys;
      List.for_all
        (fun k -> not (Monitor.Duplicate_filter.check_and_insert f ~now:0.2 k))
        keys)

let prop_dup_idle_gap_fresh =
  QCheck2.Test.make
    ~name:"dup filter: both generations cleared after ≥2-window idle gap"
    ~count:100
    QCheck2.Gen.(
      triple
        (list_size (1 -- 30) adversarial_int)
        (float_range 0.1 5.) (float_range 2. 10.))
    (fun (keys, window, gapx) ->
      let keys = List.sort_uniq compare keys in
      let f =
        Monitor.Duplicate_filter.create ~expected:10_000 ~fp_rate:1e-4 ~window
          ~now:0.
      in
      List.iter
        (fun k ->
          ignore
            (Monitor.Duplicate_filter.check_and_insert f ~now:(window /. 2.) k))
        keys;
      (* Deterministic, not probabilistic: after an idle gap of at least
         two windows both generations must be empty, so every key reads
         fresh. *)
      let now = (window /. 2.) +. (gapx *. window) in
      List.for_all
        (fun k -> Monitor.Duplicate_filter.check_and_insert f ~now k)
        keys)

let prop_shard_of_in_range =
  QCheck2.Test.make ~name:"sharded gateway: shard_of total over full int range"
    ~count:200
    QCheck2.Gen.(pair (1 -- 16) adversarial_int)
    (fun (shards, res_id) ->
      let sg =
        Dataplane_shard.Sharded_gateway.create ~clock:(fun () -> 0.) ~shards
          (asn 1)
      in
      let i = Dataplane_shard.Sharded_gateway.shard_of sg res_id in
      i >= 0 && i < shards)

let audit_secret = Hvf.as_secret_of_material (Bytes.make 16 'K')

let prop_short_frames_parse_error =
  QCheck2.Test.make ~name:"sharded router: short frames never raise" ~count:60
    QCheck2.Gen.(triple (1 -- 8) (0 -- 8) char)
    (fun (shards, len, c) ->
      let sr =
        Dataplane_shard.Sharded_router.create ~secret:audit_secret
          ~clock:(fun () -> 0.)
          ~shards (asn 2)
      in
      match
        Dataplane_shard.Sharded_router.process_bytes sr ~raw:(Bytes.make len c)
          ~payload_len:0
      with
      | Error (Router.Parse_error _) -> true
      | _ -> false)

let prop_peek_is_transparent =
  QCheck2.Test.make
    ~name:"token bucket: available_bits never perturbs admit decisions"
    ~count:100
    QCheck2.Gen.(list_size (1 -- 60) (triple (1 -- 3000) (0 -- 20) bool))
    (fun ops ->
      (* Twin buckets driven by the same admit sequence; [a] is also
         peeked (with a skewed, future clock) before each admit. Every
         verdict must still agree with the unpeeked twin. *)
      let rate = mbps 50. in
      let a = Monitor.Token_bucket.create ~rate ~burst:0.1 ~now:0. in
      let b = Monitor.Token_bucket.create ~rate ~burst:0.1 ~now:0. in
      let now = ref 0. in
      List.for_all
        (fun (bytes, dt_ms, peek) ->
          now := !now +. (float_of_int dt_ms /. 1000.);
          if peek then
            ignore (Monitor.Token_bucket.available_bits a ~now:(!now +. 1000.));
          Monitor.Token_bucket.admit a ~now:!now ~bytes
          = Monitor.Token_bucket.admit b ~now:!now ~bytes)
        ops)

(* --- Corruption detection ------------------------------------------ *)

let corrupted_is_caught name audit corrupt apply_workload () =
  let errs_before = audit () in
  Alcotest.(check (list string)) (name ^ ": clean after workload") [] errs_before;
  apply_workload ();
  Alcotest.(check (list string)) (name ^ ": still clean") [] (audit ());
  corrupt ();
  Alcotest.(check bool)
    (name ^ ": corruption detected")
    true
    (audit () <> [])

let seg_detects_corruption () =
  let t = Admission.Seg.create ~capacity:seg_capacity () in
  corrupted_is_caught "seg"
    (fun () -> Admission.Seg.audit t)
    (fun () -> Admission.Seg.corrupt_for_test t)
    (fun () ->
      ignore
        (Admission.Seg.admit t ~key:(key 1 1) ~version:1 ~src:(asn 1) ~ingress:1
           ~egress:2 ~demand:(mbps 100.) ~min_bw:(mbps 1.) ~exp_time:100.
           ~now:0.))
    ()

let eer_detects_corruption () =
  let t = Admission.Eer.create () in
  corrupted_is_caught "eer"
    (fun () -> Admission.Eer.audit t)
    (fun () -> Admission.Eer.corrupt_for_test t)
    (fun () ->
      ignore
        (Admission.Eer.admit t ~key:(key 1 1) ~version:1
           ~segrs:[ (key 100 1, gbps 1.) ]
           ~via_up:None ~demand:(mbps 10.) ~exp_time:16. ~now:0.))
    ()

let distributed_detects_corruption () =
  let t = Distributed.create ~capacity:seg_capacity () in
  corrupted_is_caught "distributed"
    (fun () -> Distributed.audit t)
    (fun () -> Distributed.corrupt_for_test t)
    (fun () ->
      ignore
        (Distributed.admit_eer t ~key:(key 1 1) ~version:1
           ~segrs:[ (key 100 1, gbps 1.) ]
           ~via_up:None ~segr_ingress:1 ~demand:(mbps 10.) ~exp_time:16.
           ~now:0.))
    ()

let bucket_detects_corruption () =
  let b = Monitor.Token_bucket.create ~rate:(mbps 100.) ~burst:0.1 ~now:0. in
  corrupted_is_caught "token bucket"
    (fun () -> Monitor.Token_bucket.audit b)
    (fun () -> Monitor.Token_bucket.corrupt_for_test b)
    (fun () -> ignore (Monitor.Token_bucket.admit b ~now:0.001 ~bytes:100))
    ()

let suite =
  [
    QCheck_alcotest.to_alcotest prop_seg_audit_clean;
    QCheck_alcotest.to_alcotest prop_eer_audit_clean;
    QCheck_alcotest.to_alcotest prop_distributed_audit_clean;
    QCheck_alcotest.to_alcotest prop_bucket_audit_clean;
    QCheck_alcotest.to_alcotest prop_dup_replay_caught;
    QCheck_alcotest.to_alcotest prop_dup_idle_gap_fresh;
    QCheck_alcotest.to_alcotest prop_shard_of_in_range;
    QCheck_alcotest.to_alcotest prop_short_frames_parse_error;
    QCheck_alcotest.to_alcotest prop_peek_is_transparent;
    Alcotest.test_case "seg: corrupt_for_test is detected" `Quick
      seg_detects_corruption;
    Alcotest.test_case "eer: corrupt_for_test is detected" `Quick
      eer_detects_corruption;
    Alcotest.test_case "distributed: corrupt_for_test is detected" `Quick
      distributed_detects_corruption;
    Alcotest.test_case "token bucket: corrupt_for_test is detected" `Quick
      bucket_detects_corruption;
  ]
