(** Tests for the Colibri packet format (Eq. (2)) and the hop
    authentication primitives (Eqs. (3)–(6)). *)

open Colibri_types
open Colibri

let asn = Ids.asn

let sample_path : Path.t =
  [
    Path.hop ~asn:(asn ~isd:1 ~num:11) ~ingress:0 ~egress:1;
    Path.hop ~asn:(asn ~isd:1 ~num:5) ~ingress:11 ~egress:1;
    Path.hop ~asn:(asn ~isd:1 ~num:1) ~ingress:11 ~egress:3;
    Path.hop ~asn:(asn ~isd:2 ~num:1) ~ingress:4 ~egress:11;
    Path.hop ~asn:(asn ~isd:2 ~num:11) ~ingress:1 ~egress:0;
  ]

let res_info : Packet.res_info =
  {
    src_as = asn ~isd:1 ~num:11;
    res_id = 42;
    bw = Bandwidth.of_mbps 250.;
    exp_time = 316.5;
    version = 3;
  }

let eer_info : Packet.eer_info = { src_host = Ids.host 7; dst_host = Ids.host 99 }

let mk_packet ?(kind = Packet.Eer) ?(payload_len = 1000) () : Packet.t =
  {
    kind;
    path = sample_path;
    res_info;
    eer_info = (match kind with Packet.Eer -> Some eer_info | Packet.Seg -> None);
    ts = Timebase.Ts.of_int 1_234_567;
    hvfs = Array.init 5 (fun i -> Bytes.make Packet.hvf_len (Char.chr (i + 65)));
    payload_len;
  }

let resinfo_roundtrip () =
  let b = Packet.res_info_to_bytes res_info in
  Alcotest.(check int) "32 bytes" Packet.res_info_len (Bytes.length b);
  let r = Packet.res_info_of_bytes b ~off:0 in
  Alcotest.(check bool) "src" true (Ids.equal_asn r.src_as res_info.src_as);
  Alcotest.(check int) "res id" res_info.res_id r.res_id;
  Alcotest.(check (float 1.)) "bw" (Bandwidth.to_bps res_info.bw) (Bandwidth.to_bps r.bw);
  Alcotest.(check (float 1e-5)) "exp" res_info.exp_time r.exp_time;
  Alcotest.(check int) "version" res_info.version r.version

let packet_roundtrip () =
  let p = mk_packet () in
  let raw = Packet.to_bytes p in
  match Packet.of_bytes raw with
  | Error e -> Alcotest.failf "parse error: %a" Packet.pp_parse_error e
  | Ok q ->
      Alcotest.(check bool) "kind" true (q.kind = Packet.Eer);
      Alcotest.(check bool) "path" true (Path.equal p.path q.path);
      Alcotest.(check int) "ts" (Timebase.Ts.to_int p.ts) (Timebase.Ts.to_int q.ts);
      Alcotest.(check int) "payload len" p.payload_len q.payload_len;
      Alcotest.(check int) "hvf count" 5 (Array.length q.hvfs);
      Array.iteri
        (fun i v ->
          Alcotest.(check string) (Printf.sprintf "hvf %d" i)
            (Bytes.to_string p.hvfs.(i))
            (Bytes.to_string v))
        q.hvfs;
      Alcotest.(check bool) "eer_info" true (q.eer_info = Some eer_info)

let seg_packet_roundtrip () =
  let p = mk_packet ~kind:Packet.Seg () in
  match Packet.of_bytes (Packet.to_bytes p) with
  | Ok q ->
      Alcotest.(check bool) "kind seg" true (q.kind = Packet.Seg);
      Alcotest.(check bool) "no eer info" true (q.eer_info = None)
  | Error e -> Alcotest.failf "parse error: %a" Packet.pp_parse_error e

let parse_errors () =
  let p = mk_packet () in
  let raw = Packet.to_bytes p in
  Alcotest.(check bool) "truncated" true
    (Packet.of_bytes (Bytes.sub raw 0 10) = Error Packet.Truncated);
  let bad_magic = Bytes.copy raw in
  Bytes.set_uint16_be bad_magic 0 0xdead;
  Alcotest.(check bool) "bad magic" true (Packet.of_bytes bad_magic = Error Packet.Bad_magic);
  let bad_kind = Bytes.copy raw in
  Bytes.set_uint8 bad_kind 2 7;
  Alcotest.(check bool) "bad kind" true (Packet.of_bytes bad_kind = Error Packet.Bad_kind);
  let zero_hops = Bytes.copy raw in
  Bytes.set_uint8 zero_hops 3 0;
  Alcotest.(check bool) "zero hops" true
    (Packet.of_bytes zero_hops = Error Packet.Bad_hop_count);
  (* Corrupting the first hop's ingress to non-zero invalidates the path. *)
  let bad_path = Bytes.copy raw in
  Bytes.set_int32_be bad_path (Packet.fixed_header_len + 8) 9l;
  (match Packet.of_bytes bad_path with
  | Error (Packet.Bad_path _) -> ()
  | _ -> Alcotest.fail "expected Bad_path")

let wire_size_accounts_header () =
  let p = mk_packet ~payload_len:0 () in
  Alcotest.(check int) "header only" (Bytes.length (Packet.to_bytes p)) (Packet.wire_size p);
  let q = mk_packet ~payload_len:1500 () in
  Alcotest.(check int) "with payload" (Packet.wire_size p + 1500) (Packet.wire_size q)

(* ---------- HVF primitives ---------- *)

let secret = Hvf.as_secret_of_material (Bytes.make 16 'K')
let other_secret = Hvf.as_secret_of_material (Bytes.make 16 'L')

let seg_token_properties () =
  let hop = List.nth sample_path 2 in
  let t1 = Hvf.seg_token secret ~res_info ~hop in
  Alcotest.(check int) "ℓ_hvf" Packet.hvf_len (Bytes.length t1);
  Alcotest.(check bool) "deterministic" true
    (Bytes.equal t1 (Hvf.seg_token secret ~res_info ~hop));
  Alcotest.(check bool) "key sensitivity" false
    (Bytes.equal t1 (Hvf.seg_token other_secret ~res_info ~hop));
  Alcotest.(check bool) "bw sensitivity" false
    (Bytes.equal t1
       (Hvf.seg_token secret ~res_info:{ res_info with bw = Bandwidth.of_mbps 251. } ~hop));
  Alcotest.(check bool) "version sensitivity" false
    (Bytes.equal t1 (Hvf.seg_token secret ~res_info:{ res_info with version = 4 } ~hop));
  Alcotest.(check bool) "iface sensitivity" false
    (Bytes.equal t1 (Hvf.seg_token secret ~res_info ~hop:{ hop with egress = 5 }))

let hop_auth_properties () =
  let hop = List.nth sample_path 1 in
  let s1 = Hvf.hop_auth secret ~res_info ~eer_info ~hop in
  Alcotest.(check int) "full MAC" 16 (Bytes.length s1);
  Alcotest.(check bool) "host sensitivity" false
    (Bytes.equal s1
       (Hvf.hop_auth secret ~res_info
          ~eer_info:{ eer_info with dst_host = Ids.host 100 }
          ~hop));
  Alcotest.(check bool) "resid sensitivity" false
    (Bytes.equal s1 (Hvf.hop_auth secret ~res_info:{ res_info with res_id = 43 } ~eer_info ~hop))

let eer_hvf_properties () =
  let hop = List.nth sample_path 0 in
  let sigma = Hvf.sigma_of_bytes (Hvf.hop_auth secret ~res_info ~eer_info ~hop) in
  let ts = Timebase.Ts.of_int 500 in
  let v = Hvf.eer_hvf sigma ~ts ~pkt_size:1200 in
  Alcotest.(check int) "ℓ_hvf" Packet.hvf_len (Bytes.length v);
  Alcotest.(check bool) "ts sensitivity" false
    (Bytes.equal v (Hvf.eer_hvf sigma ~ts:(Timebase.Ts.of_int 501) ~pkt_size:1200));
  Alcotest.(check bool) "size sensitivity" false
    (Bytes.equal v (Hvf.eer_hvf sigma ~ts ~pkt_size:1201));
  Alcotest.(check bool) "equal_hvf" true (Hvf.equal_hvf v (Bytes.copy v));
  Alcotest.(check bool) "equal_hvf length check" false (Hvf.equal_hvf v (Bytes.make 3 'x'))

let sigma_seal_open () =
  let aead = Crypto.Aead.of_secret (Bytes.make 16 'd') in
  let rkey : Ids.res_key = { src_as = asn ~isd:1 ~num:11; res_id = 42 } in
  let sigma = Bytes.make 16 's' in
  let sealed = Hvf.seal_sigma ~aead ~res_key:rkey ~version:3 sigma in
  (match Hvf.open_sigma ~aead ~res_key:rkey ~version:3 sealed with
  | Some s -> Alcotest.(check bool) "roundtrip" true (Bytes.equal s sigma)
  | None -> Alcotest.fail "open failed");
  (* Binding to the reservation: wrong key or version fails. *)
  Alcotest.(check bool) "wrong res id" true
    (Hvf.open_sigma ~aead ~res_key:{ rkey with res_id = 43 } ~version:3 sealed = None);
  Alcotest.(check bool) "wrong version" true
    (Hvf.open_sigma ~aead ~res_key:rkey ~version:4 sealed = None)

(* ---------- Properties ---------- *)

let packet_gen =
  QCheck2.Gen.(
    let* hops = 1 -- 16 in
    let* res_id = 1 -- 1_000_000 in
    let* payload_len = 0 -- 9000 in
    let* ts = 0 -- 16_000_000 in
    let* version = 1 -- 100 in
    let* kind = oneofl [ Packet.Seg; Packet.Eer ] in
    let path =
      List.init hops (fun i ->
          Path.hop ~asn:(asn ~isd:1 ~num:(i + 1))
            ~ingress:(if i = 0 then 0 else 1)
            ~egress:(if i = hops - 1 then 0 else 2))
    in
    return
      {
        Packet.kind;
        path;
        res_info = { res_info with res_id; version };
        eer_info = (match kind with Packet.Eer -> Some eer_info | Packet.Seg -> None);
        ts = Timebase.Ts.of_int ts;
        hvfs = Array.init hops (fun i -> Bytes.make Packet.hvf_len (Char.chr (i mod 256)));
        payload_len;
      })

let prop_packet_roundtrip =
  QCheck2.Test.make ~name:"packet: bytes roundtrip" ~count:200 packet_gen (fun p ->
      match Packet.of_bytes (Packet.to_bytes p) with
      | Error _ -> false
      | Ok q ->
          q.kind = p.kind
          && Path.equal q.path p.path
          && q.res_info.res_id = p.res_info.res_id
          && q.res_info.version = p.res_info.version
          && Timebase.Ts.to_int q.ts = Timebase.Ts.to_int p.ts
          && q.payload_len = p.payload_len
          && Array.for_all2 Bytes.equal q.hvfs p.hvfs)

let prop_header_flip_breaks_hvf =
  (* Flipping any byte of ResInfo/EERInfo/hop interfaces used in Eq. (4)
     changes the recomputed σ — the router would reject. *)
  let gen = QCheck2.Gen.(0 -- (Packet.res_info_len - 1)) in
  QCheck2.Test.make ~name:"hvf: any ResInfo bit flip breaks the MAC" ~count:64 gen
    (fun byte_idx ->
      let hop = List.nth sample_path 1 in
      let base = Hvf.hop_auth secret ~res_info ~eer_info ~hop in
      let ri = Packet.res_info_to_bytes res_info in
      Bytes.set ri byte_idx (Char.chr (Char.code (Bytes.get ri byte_idx) lxor 0x01));
      let tampered = Packet.res_info_of_bytes ri ~off:0 in
      (* Some flips may round-trip to the same value through float
         encoding; only count flips that changed the record. *)
      let changed = Packet.res_info_to_bytes tampered <> Packet.res_info_to_bytes res_info in
      (not changed)
      || not (Bytes.equal base (Hvf.hop_auth secret ~res_info:tampered ~eer_info ~hop)))

let suite =
  [
    Alcotest.test_case "ResInfo roundtrip" `Quick resinfo_roundtrip;
    Alcotest.test_case "EER packet roundtrip" `Quick packet_roundtrip;
    Alcotest.test_case "SegR packet roundtrip" `Quick seg_packet_roundtrip;
    Alcotest.test_case "parse errors" `Quick parse_errors;
    Alcotest.test_case "wire size" `Quick wire_size_accounts_header;
    Alcotest.test_case "SegR token (Eq. 3)" `Quick seg_token_properties;
    Alcotest.test_case "hop authenticator (Eq. 4)" `Quick hop_auth_properties;
    Alcotest.test_case "per-packet HVF (Eq. 6)" `Quick eer_hvf_properties;
    Alcotest.test_case "sigma AEAD transport (Eq. 5)" `Quick sigma_seal_open;
    QCheck_alcotest.to_alcotest prop_packet_roundtrip;
    QCheck_alcotest.to_alcotest prop_header_flip_breaks_hvf;
  ]
