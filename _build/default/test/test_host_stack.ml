(** Tests for the end-host stack (§3.2): automatic EER renewal, demand
    adjustment at renewal time, fallback on route failure, close
    semantics. *)

open Colibri_types
open Colibri_topology
open Colibri
module G = Topology_gen.Two_isd

let gbps = Bandwidth.of_gbps
let mbps = Bandwidth.of_mbps
let ok = function Ok v -> v | Error e -> Alcotest.fail e

(* Deployment with SegRs from S towards both of its cores, kept alive
   by periodic renewal+activation so long runs don't lose the
   underlay. *)
let rig ?(keep_segrs_alive = true) () =
  let d = Deployment.create (Topology_gen.two_isd ()) in
  let db = Deployment.seg_db d in
  let segrs =
    Segments.Db.up_segments db ~src:G.s
    |> List.map (fun (u : Segments.t) ->
           ok
             (Deployment.setup_segr d ~path:u.Segments.path ~kind:Reservation.Up
                ~max_bw:(gbps 1.) ~min_bw:(mbps 1.)))
  in
  if keep_segrs_alive then
    Net.Engine.every (Deployment.engine d) ~every:(Reservation.segr_lifetime /. 2.)
      (fun () ->
        List.iter
          (fun (segr : Reservation.segr) ->
            match
              Deployment.setup_segr ~renew:segr.key d ~path:segr.path
                ~kind:Reservation.Up ~max_bw:(gbps 1.) ~min_bw:(mbps 1.)
            with
            | Ok _ -> (
                match Deployment.activate_segr d ~key:segr.key with
                | Ok () -> ()
                | Error _ -> ())
            | Error _ -> ())
          segrs;
        true);
  d

let flow_outlives_eer_lifetime () =
  let d = rig () in
  let stack = Host_stack.create d ~asn:G.s ~host:(Ids.host 1) in
  let flow = ok (Host_stack.open_flow stack ~dst:G.y1 ~dst_host:(Ids.host 2) ~bw:(mbps 20.)) in
  (* Run for 60 s — almost four EER lifetimes — sending periodically. *)
  let failures = ref 0 in
  for _ = 1 to 120 do
    Deployment.advance d 0.5;
    match Host_stack.send flow ~payload_len:500 with
    | Host_stack.Delivered -> ()
    | _ -> incr failures
  done;
  Alcotest.(check int) "no delivery failures over 60s" 0 !failures;
  Alcotest.(check bool)
    (Printf.sprintf "renewed automatically (%d times)" (Host_stack.renewals flow))
    true
    (Host_stack.renewals flow >= 3);
  Alcotest.(check int) "all packets delivered" 120 (Host_stack.delivered flow)

let bandwidth_adjusts_at_renewal () =
  let d = rig () in
  let stack = Host_stack.create d ~asn:G.s ~host:(Ids.host 1) in
  let flow = ok (Host_stack.open_flow stack ~dst:G.y1 ~dst_host:(Ids.host 2) ~bw:(mbps 10.)) in
  Alcotest.(check (float 1e3)) "initial bw" 10e6
    (Bandwidth.to_bps (Host_stack.flow_bw flow));
  Host_stack.set_bandwidth flow (mbps 40.);
  (* After one renewal cycle the guarantee follows the demand. *)
  Deployment.advance d (Reservation.eer_lifetime +. 2.);
  Alcotest.(check bool) "renewed" true (Host_stack.renewals flow >= 1);
  Alcotest.(check (float 1e3)) "bw raised at renewal" 40e6
    (Bandwidth.to_bps (Host_stack.flow_bw flow))

let close_stops_renewal () =
  let d = rig () in
  let stack = Host_stack.create d ~asn:G.s ~host:(Ids.host 1) in
  let flow = ok (Host_stack.open_flow stack ~dst:G.y1 ~dst_host:(Ids.host 2) ~bw:(mbps 10.)) in
  Alcotest.(check int) "flow registered" 1 (Host_stack.open_flows stack);
  Host_stack.close flow;
  Alcotest.(check int) "flow unregistered" 0 (Host_stack.open_flows stack);
  Deployment.advance d (2. *. Reservation.eer_lifetime);
  Alcotest.(check int) "no renewals after close" 0 (Host_stack.renewals flow);
  Alcotest.(check bool) "sends refused after close" true
    (Host_stack.send flow ~payload_len:100 = Host_stack.Dropped_at_gateway)

let renewal_failure_counted_when_underlay_gone () =
  (* Without SegR keep-alive the underlay lapses after ~300 s; the
     stack's renewals then fail and are counted. *)
  let d = rig ~keep_segrs_alive:false () in
  let stack = Host_stack.create d ~asn:G.s ~host:(Ids.host 1) in
  let flow = ok (Host_stack.open_flow stack ~dst:G.y1 ~dst_host:(Ids.host 2) ~bw:(mbps 10.)) in
  Deployment.advance d (Reservation.segr_lifetime +. 30.);
  Alcotest.(check bool) "renewal failures recorded" true
    (Host_stack.renewal_failures flow > 0);
  Alcotest.(check bool) "flow no longer delivers" true
    (Host_stack.send flow ~payload_len:100 <> Host_stack.Delivered)

let suite =
  [
    Alcotest.test_case "flow outlives EER lifetime" `Quick flow_outlives_eer_lifetime;
    Alcotest.test_case "bandwidth adjusts at renewal" `Quick bandwidth_adjusts_at_renewal;
    Alcotest.test_case "close stops renewal" `Quick close_stops_renewal;
    Alcotest.test_case "renewal failure when underlay gone" `Quick
      renewal_failure_counted_when_underlay_gone;
  ]
