(** Unit tests for the control-plane message layer: digest
    sensitivity, request authentication, and reply-hop MACs. *)

open Colibri_types
open Colibri

let asn n = Ids.asn ~isd:1 ~num:n
let mbps = Bandwidth.of_mbps

let path : Path.t =
  [
    Path.hop ~asn:(asn 1) ~ingress:0 ~egress:1;
    Path.hop ~asn:(asn 2) ~ingress:1 ~egress:2;
    Path.hop ~asn:(asn 3) ~ingress:1 ~egress:0;
  ]

let res_info : Packet.res_info =
  { src_as = asn 1; res_id = 5; bw = mbps 100.; exp_time = 300.; version = 1 }

let seg_req : Protocol.seg_request =
  { res_info; min_bw = mbps 10.; kind = Reservation.Up; path; renewal = false }

let eer_req : Protocol.eer_request =
  {
    res_info;
    eer_info = { src_host = Ids.host 1; dst_host = Ids.host 2 };
    path;
    segr_keys = [ { src_as = asn 1; res_id = 3 } ];
    renewal = false;
  }

let seg_digest_sensitivity () =
  let base = Protocol.seg_request_digest seg_req in
  let differs r = not (Bytes.equal base (Protocol.seg_request_digest r)) in
  Alcotest.(check bool) "bw" true
    (differs { seg_req with res_info = { res_info with bw = mbps 101. } });
  Alcotest.(check bool) "min_bw" true (differs { seg_req with min_bw = mbps 11. });
  Alcotest.(check bool) "kind" true (differs { seg_req with kind = Reservation.Core });
  Alcotest.(check bool) "renewal flag" true (differs { seg_req with renewal = true });
  Alcotest.(check bool) "path" true
    (differs { seg_req with path = Path.reverse path });
  Alcotest.(check bool) "deterministic" true
    (Bytes.equal base (Protocol.seg_request_digest seg_req))

let eer_digest_sensitivity () =
  let base = Protocol.eer_request_digest eer_req in
  let differs r = not (Bytes.equal base (Protocol.eer_request_digest r)) in
  Alcotest.(check bool) "hosts" true
    (differs
       { eer_req with eer_info = { eer_req.eer_info with dst_host = Ids.host 3 } });
  Alcotest.(check bool) "segr keys" true
    (differs { eer_req with segr_keys = [ { src_as = asn 1; res_id = 4 } ] });
  Alcotest.(check bool) "seg and eer digests distinct" true
    (not (Bytes.equal (Protocol.seg_request_digest seg_req) base))

let request_auth_roundtrip () =
  let digest = Protocol.seg_request_digest seg_req in
  let keys = Hashtbl.create 3 in
  List.iter
    (fun a ->
      Hashtbl.replace keys a
        (Crypto.Cmac.of_secret (Bytes.make 16 (Char.chr (a.Ids.num + 65)))))
    (Path.ases path);
  let auth =
    Protocol.authenticate_request ~digest ~key_for:(Hashtbl.find keys)
      ~ases:(Path.ases path)
  in
  Alcotest.(check int) "one MAC per AS" 3 (List.length auth);
  List.iter
    (fun a ->
      Alcotest.(check bool)
        (Fmt.str "verifies at %a" Ids.pp_asn a)
        true
        (Protocol.verify_request ~digest ~asn:a ~key:(Hashtbl.find keys a) ~auth))
    (Path.ases path);
  (* Wrong key, absent AS, tampered digest all fail. *)
  Alcotest.(check bool) "wrong key" false
    (Protocol.verify_request ~digest ~asn:(asn 1)
       ~key:(Crypto.Cmac.of_secret (Bytes.make 16 'z'))
       ~auth);
  Alcotest.(check bool) "absent AS" false
    (Protocol.verify_request ~digest ~asn:(asn 9) ~key:(Hashtbl.find keys (asn 1)) ~auth);
  let tampered = Protocol.seg_request_digest { seg_req with min_bw = mbps 999. } in
  Alcotest.(check bool) "tampered digest" false
    (Protocol.verify_request ~digest:tampered ~asn:(asn 1)
       ~key:(Hashtbl.find keys (asn 1)) ~auth)

let reply_hop_mac () =
  let digest = Protocol.eer_request_digest eer_req in
  let key = Crypto.Cmac.of_secret (Bytes.make 16 'r') in
  let hop =
    Protocol.make_reply_hop ~digest ~key ~asn:(asn 2) ~granted:(mbps 80.)
      ~material:(Bytes.of_string "sealed-sigma")
  in
  Alcotest.(check bool) "verifies" true (Protocol.verify_reply_hop ~digest ~key hop);
  Alcotest.(check bool) "granted tampering caught" false
    (Protocol.verify_reply_hop ~digest ~key { hop with granted = mbps 200. });
  Alcotest.(check bool) "material tampering caught" false
    (Protocol.verify_reply_hop ~digest ~key
       { hop with material = Bytes.of_string "sealed-sigmb" });
  Alcotest.(check bool) "binding to request" false
    (Protocol.verify_reply_hop
       ~digest:(Protocol.eer_request_digest { eer_req with renewal = true })
       ~key hop)

let prop_auth_binds_to_as =
  (* A MAC produced for AS i never verifies at AS j with j's key. *)
  QCheck2.Test.make ~name:"protocol: per-AS MACs are not transferable" ~count:50
    QCheck2.Gen.(pair (1 -- 20) (1 -- 20))
    (fun (i, j) ->
      QCheck2.assume (i <> j);
      let digest = Protocol.seg_request_digest seg_req in
      let key_of n = Crypto.Cmac.of_secret (Bytes.make 16 (Char.chr (n + 40))) in
      let auth =
        Protocol.authenticate_request ~digest ~key_for:(fun a -> key_of a.Ids.num)
          ~ases:[ asn i ]
      in
      (* Rebind the MAC list to AS j: verification with j's key fails. *)
      let forged = List.map (fun (_, m) -> (asn j, m)) auth in
      not (Protocol.verify_request ~digest ~asn:(asn j) ~key:(key_of j) ~auth:forged))

let suite =
  [
    Alcotest.test_case "SegReq digest sensitivity" `Quick seg_digest_sensitivity;
    Alcotest.test_case "EEReq digest sensitivity" `Quick eer_digest_sensitivity;
    Alcotest.test_case "request auth roundtrip" `Quick request_auth_roundtrip;
    Alcotest.test_case "reply hop MAC" `Quick reply_hop_mac;
    QCheck_alcotest.to_alcotest prop_auth_binds_to_as;
  ]
