(** Unit tests for reservation state and lifecycle (§4.2): version
    validity, SegR activation, EER version semantics, plus the DSCP
    mapping of Appendix B. *)

open Colibri_types
open Colibri

let asn n = Ids.asn ~isd:1 ~num:n
let mbps = Bandwidth.of_mbps

let path : Path.t =
  [
    Path.hop ~asn:(asn 1) ~ingress:0 ~egress:1;
    Path.hop ~asn:(asn 2) ~ingress:1 ~egress:0;
  ]

let mk_segr ?active ?pending () : Reservation.segr =
  {
    key = { src_as = asn 1; res_id = 1 };
    kind = Reservation.Up;
    path;
    active;
    pending;
    tokens = [];
    allowed_ases = None;
  }

let v n bw exp : Reservation.version = { version = n; bw; exp_time = exp }

let lifetimes_match_paper () =
  Alcotest.(check (float 0.)) "SegR ≈ 5 min" 300. Reservation.segr_lifetime;
  Alcotest.(check (float 0.)) "EER = 16 s" 16. Reservation.eer_lifetime

let segr_bw_and_expiry () =
  let s = mk_segr ~active:(v 1 (mbps 100.) 300.) () in
  Alcotest.(check (float 1.)) "active bw" 100e6
    (Bandwidth.to_bps (Reservation.segr_bw s ~now:0.));
  Alcotest.(check (float 1.)) "expired bw is 0" 0.
    (Bandwidth.to_bps (Reservation.segr_bw s ~now:301.));
  Alcotest.(check bool) "not yet expired" false (Reservation.segr_expired s ~now:0.);
  Alcotest.(check bool) "expired" true (Reservation.segr_expired s ~now:301.);
  (* A pending version contributes no bandwidth until activation. *)
  let p = mk_segr ~pending:(v 1 (mbps 100.) 300.) () in
  Alcotest.(check (float 1.)) "pending holds no bw" 0.
    (Bandwidth.to_bps (Reservation.segr_bw p ~now:0.))

let segr_activation () =
  let s = mk_segr ~active:(v 1 (mbps 100.) 300.) ~pending:(v 2 (mbps 50.) 600.) () in
  (match Reservation.activate s ~now:0. with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "v2 active" 2 (Option.get s.active).Reservation.version;
  Alcotest.(check bool) "pending cleared" true (s.pending = None);
  (* No pending: error. *)
  (match Reservation.activate s ~now:0. with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "activated nothing");
  (* Expired pending: error. *)
  let st = mk_segr ~pending:(v 2 (mbps 50.) 10.) () in
  match Reservation.activate st ~now:20. with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "activated expired pending"

let mk_eer versions : Reservation.eer =
  {
    key = { src_as = asn 1; res_id = 2 };
    path;
    src_host = Ids.host 1;
    dst_host = Ids.host 2;
    segr_keys = [];
    versions;
  }

let eer_version_semantics () =
  let e = mk_eer [ v 1 (mbps 10.) 16.; v 2 (mbps 30.) 32. ] in
  (* Max, not sum (§4.2/§4.8). *)
  Alcotest.(check (float 1.)) "bw is max" 30e6
    (Bandwidth.to_bps (Reservation.eer_bw e ~now:0.));
  (* Current version = newest valid. *)
  (match Reservation.eer_current_version e ~now:0. with
  | Some cv -> Alcotest.(check int) "v2 current" 2 cv.version
  | None -> Alcotest.fail "no current version");
  (* After v2's expiry nothing remains (v1 expired earlier). *)
  Alcotest.(check bool) "expired" true (Reservation.eer_expired e ~now:33.);
  (* Version numbers must strictly increase. *)
  let e2 = mk_eer [ v 3 (mbps 10.) 16. ] in
  (match Reservation.add_eer_version e2 (v 3 (mbps 10.) 20.) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "duplicate version accepted");
  match Reservation.add_eer_version e2 (v 4 (mbps 10.) 20.) with
  | Ok () -> Alcotest.(check int) "added" 2 (List.length e2.versions)
  | Error e -> Alcotest.fail e

let eer_valid_versions_sorted_and_pruned () =
  let e = mk_eer [ v 1 (mbps 10.) 5.; v 3 (mbps 10.) 40.; v 2 (mbps 10.) 30. ] in
  let vs = Reservation.eer_valid_versions e ~now:10. in
  Alcotest.(check (list int)) "newest first, expired pruned" [ 3; 2 ]
    (List.map (fun (x : Reservation.version) -> x.version) vs)

let res_info_construction () =
  let e = mk_eer [ v 1 (mbps 10.) 16. ] in
  let ri = Reservation.res_info_of_eer e (List.hd e.versions) in
  Alcotest.(check int) "res id" 2 ri.res_id;
  Alcotest.(check (float 1.)) "bw" 10e6 (Bandwidth.to_bps ri.bw);
  let ei = Reservation.eer_info_of_eer e in
  Alcotest.(check int) "src host" 1 ei.src_host.addr;
  Alcotest.(check int) "dst host" 2 ei.dst_host.addr

let dscp_mapping () =
  Alcotest.(check int) "data is EF" 0b101110
    (Net.Dscp.of_class Net.Traffic_class.Colibri_data);
  Alcotest.(check int) "control is CS6" 0b110000
    (Net.Dscp.of_class Net.Traffic_class.Colibri_control);
  (* Round trip for the three classes. *)
  List.iter
    (fun cls ->
      Alcotest.(check bool) "roundtrip" true
        (Net.Dscp.to_class (Net.Dscp.of_class cls) = cls))
    Net.Traffic_class.all;
  (* Unknown code points degrade, never upgrade. *)
  Alcotest.(check bool) "unknown degrades" true
    (Net.Dscp.to_class 0b011010 = Net.Traffic_class.Best_effort);
  (* Gateway normalization overrides host marking (App. B). *)
  Alcotest.(check int) "self-marked EF demoted" 0
    (Net.Dscp.normalize ~host_marked:Net.Dscp.expedited_forwarding
       ~classified:Net.Traffic_class.Best_effort)

let suite =
  [
    Alcotest.test_case "lifetimes match paper" `Quick lifetimes_match_paper;
    Alcotest.test_case "SegR bandwidth and expiry" `Quick segr_bw_and_expiry;
    Alcotest.test_case "SegR activation" `Quick segr_activation;
    Alcotest.test_case "EER version semantics" `Quick eer_version_semantics;
    Alcotest.test_case "EER versions sorted and pruned" `Quick eer_valid_versions_sorted_and_pruned;
    Alcotest.test_case "ResInfo construction" `Quick res_info_construction;
    Alcotest.test_case "DSCP mapping (App. B)" `Quick dscp_mapping;
  ]
