(** Tests for neighbor-to-neighbor settlement accounting (§9). *)

open Colibri_types
open Colibri

let gbps = Bandwidth.of_gbps
let asn n = Ids.asn ~isd:1 ~num:n
let key src id : Ids.res_key = { src_as = asn src; res_id = id }

let with_ledger () =
  let sim = Timebase.Sim_clock.create () in
  (sim, Settlement.create ~clock:(Timebase.Sim_clock.clock sim) (asn 1))

let committed_capacity_accrues () =
  let sim, ledger = with_ledger () in
  let neighbor = asn 2 in
  (* 2 Gbps committed for half an hour = 1 Gbps·h. *)
  Settlement.commitment_started ledger ~neighbor ~key:(key 9 1) ~version:1
    ~bw:(gbps 2.);
  Timebase.Sim_clock.advance sim 1800.;
  Settlement.commitment_ended ledger ~neighbor ~key:(key 9 1) ~version:1;
  match Settlement.preview ledger with
  | [ inv ] ->
      Alcotest.(check (float 1e-6)) "Gbps hours" 1.0 inv.committed_gbps_hours;
      Alcotest.(check (float 1e-6)) "amount at default price" 1.0 inv.amount
  | l -> Alcotest.failf "expected one invoice, got %d" (List.length l)

let open_commitments_accrue_in_preview () =
  let sim, ledger = with_ledger () in
  let neighbor = asn 2 in
  Settlement.commitment_started ledger ~neighbor ~key:(key 9 1) ~version:1
    ~bw:(gbps 1.);
  Timebase.Sim_clock.advance sim 3600.;
  (* Not ended: preview still accrues up to now. *)
  (match Settlement.preview ledger with
  | [ inv ] -> Alcotest.(check (float 1e-6)) "1 Gbps·h open" 1.0 inv.committed_gbps_hours
  | _ -> Alcotest.fail "expected one invoice");
  (* Another hour keeps accruing. *)
  Timebase.Sim_clock.advance sim 3600.;
  match Settlement.preview ledger with
  | [ inv ] -> Alcotest.(check (float 1e-6)) "2 Gbps·h" 2.0 inv.committed_gbps_hours
  | _ -> Alcotest.fail "expected one invoice"

let carried_volume_billed () =
  let _, ledger = with_ledger () in
  let neighbor = asn 2 in
  Settlement.carried ledger ~neighbor ~bytes:5_000_000_000;
  match Settlement.preview ledger with
  | [ inv ] ->
      Alcotest.(check (float 1e-6)) "5 GB" 5.0 inv.carried_gb;
      Alcotest.(check (float 1e-6)) "0.1/GB default" 0.5 inv.amount
  | _ -> Alcotest.fail "expected one invoice"

let contract_prices_apply () =
  let sim, ledger = with_ledger () in
  let neighbor = asn 2 in
  Settlement.set_contract ledger
    {
      neighbor;
      price_per_gbps_hour = 10.;
      price_per_gb = 2.;
      colibri_share = 0.5;
    };
  Settlement.commitment_started ledger ~neighbor ~key:(key 9 1) ~version:1
    ~bw:(gbps 1.);
  Timebase.Sim_clock.advance sim 3600.;
  Settlement.carried ledger ~neighbor ~bytes:1_000_000_000;
  match Settlement.preview ledger with
  | [ inv ] -> Alcotest.(check (float 1e-6)) "10·1 + 2·1" 12.0 inv.amount
  | _ -> Alcotest.fail "expected one invoice"

let close_period_resets () =
  let sim, ledger = with_ledger () in
  let neighbor = asn 2 in
  Settlement.commitment_started ledger ~neighbor ~key:(key 9 1) ~version:1
    ~bw:(gbps 1.);
  Settlement.carried ledger ~neighbor ~bytes:2_000_000_000;
  Timebase.Sim_clock.advance sim 3600.;
  let invoices = Settlement.close_period ledger in
  Alcotest.(check int) "one invoice" 1 (List.length invoices);
  Alcotest.(check (float 1e-6)) "billed" 1.2 (List.hd invoices).amount;
  (* New period: volume reset; the still-open commitment restarts. *)
  Timebase.Sim_clock.advance sim 1800.;
  match Settlement.preview ledger with
  | [ inv ] ->
      Alcotest.(check (float 1e-6)) "half hour in new period" 0.5
        inv.committed_gbps_hours;
      Alcotest.(check (float 1e-6)) "no carried volume yet" 0. inv.carried_gb
  | _ -> Alcotest.fail "expected one invoice"

let per_neighbor_isolation () =
  let sim, ledger = with_ledger () in
  Settlement.commitment_started ledger ~neighbor:(asn 2) ~key:(key 9 1) ~version:1
    ~bw:(gbps 1.);
  Settlement.commitment_started ledger ~neighbor:(asn 3) ~key:(key 9 2) ~version:1
    ~bw:(gbps 4.);
  Timebase.Sim_clock.advance sim 3600.;
  let invoices = Settlement.preview ledger in
  Alcotest.(check int) "two neighbors" 2 (List.length invoices);
  let find n = List.find (fun (i : Settlement.invoice) -> Ids.equal_asn i.neighbor (asn n)) invoices in
  Alcotest.(check (float 1e-6)) "neighbor 2" 1.0 (find 2).committed_gbps_hours;
  Alcotest.(check (float 1e-6)) "neighbor 3" 4.0 (find 3).committed_gbps_hours

let wiring_via_topology () =
  let topo = Colibri_topology.Topology_gen.linear ~n:2 ~capacity:(gbps 40.) in
  let sim = Timebase.Sim_clock.create () in
  let ledger = Settlement.create ~clock:(Timebase.Sim_clock.clock sim) (asn 1) in
  (* AS 1's interface 2 leads to AS 2: the commitment lands on AS 2's
     account. *)
  Settlement.on_segr_granted ledger ~topo ~egress:2 ~key:(key 9 1) ~version:1
    ~bw:(gbps 1.);
  Alcotest.(check int) "account opened for neighbor" 1
    (List.length (Settlement.neighbors ledger));
  Alcotest.(check bool) "it is AS 2" true
    (Ids.equal_asn (List.hd (Settlement.neighbors ledger)) (asn 2));
  (* Local egress (0) bills nobody. *)
  Settlement.on_segr_granted ledger ~topo ~egress:0 ~key:(key 9 2) ~version:1
    ~bw:(gbps 1.);
  Alcotest.(check int) "still one neighbor" 1 (List.length (Settlement.neighbors ledger))

let double_end_is_idempotent () =
  let sim, ledger = with_ledger () in
  let neighbor = asn 2 in
  Settlement.commitment_started ledger ~neighbor ~key:(key 9 1) ~version:1
    ~bw:(gbps 2.);
  Timebase.Sim_clock.advance sim 3600.;
  Settlement.commitment_ended ledger ~neighbor ~key:(key 9 1) ~version:1;
  Timebase.Sim_clock.advance sim 3600.;
  Settlement.commitment_ended ledger ~neighbor ~key:(key 9 1) ~version:1;
  match Settlement.preview ledger with
  | [ inv ] -> Alcotest.(check (float 1e-6)) "charged once" 2.0 inv.committed_gbps_hours
  | _ -> Alcotest.fail "expected one invoice"

let suite =
  [
    Alcotest.test_case "committed capacity accrues" `Quick committed_capacity_accrues;
    Alcotest.test_case "open commitments accrue in preview" `Quick open_commitments_accrue_in_preview;
    Alcotest.test_case "carried volume billed" `Quick carried_volume_billed;
    Alcotest.test_case "contract prices apply" `Quick contract_prices_apply;
    Alcotest.test_case "close_period resets" `Quick close_period_resets;
    Alcotest.test_case "per-neighbor isolation" `Quick per_neighbor_isolation;
    Alcotest.test_case "wiring via topology" `Quick wiring_via_topology;
    Alcotest.test_case "double end is idempotent" `Quick double_end_is_idempotent;
  ]
