(** Tests for the Colibri service: authenticated SegR/EER setup
    handlers, renewal versioning, activation, registry, and policing
    hooks. Uses the deployment orchestration over the two-ISD example
    topology. *)

open Colibri_types
open Colibri_topology
open Colibri
module G = Topology_gen.Two_isd

let gbps = Bandwidth.of_gbps
let mbps = Bandwidth.of_mbps

let make_deployment () = Deployment.create (Topology_gen.two_isd ())

let up_path (d : Deployment.t) src =
  match Segments.Db.up_segments (Deployment.seg_db d) ~src with
  | s :: _ -> s.Segments.path
  | [] -> Alcotest.fail "no up segment"

let setup_up d =
  Deployment.setup_segr d ~path:(up_path d G.s) ~kind:Reservation.Up
    ~max_bw:(gbps 2.) ~min_bw:(mbps 10.)

let seg_setup_success () =
  let d = make_deployment () in
  match setup_up d with
  | Error e -> Alcotest.fail e
  | Ok segr ->
      Alcotest.(check int) "tokens for every AS" (Path.length segr.path)
        (List.length segr.tokens);
      (match segr.active with
      | Some v ->
          Alcotest.(check (float 1e3)) "granted full demand" 2e9 (Bandwidth.to_bps v.bw);
          Alcotest.(check (float 1e-6)) "five-minute lifetime"
            Reservation.segr_lifetime v.exp_time
      | None -> Alcotest.fail "no active version");
      (* Every on-path AS holds a transit record. *)
      List.iter
        (fun (hop : Path.hop) ->
          match Cserv.transit_segr (Deployment.cserv d hop.asn) segr.key with
          | Some ts ->
              Alcotest.(check bool) "positive bw" true
                (Bandwidth.is_positive
                   (Reservation.segr_bw ts.segr ~now:(Deployment.now d)))
          | None -> Alcotest.failf "missing transit record at %a" Ids.pp_asn hop.asn)
        segr.path

let seg_setup_grants_path_minimum () =
  (* Saturate the X1→Y1 link from another tenant first; a later setup
     gets the bottleneck bandwidth, not its demand. *)
  let d = make_deployment () in
  (match setup_up d with Ok _ -> () | Error e -> Alcotest.fail e);
  (* Demand far above the 40 Gbps × 0.8 link share: grant is capped. *)
  match
    Deployment.setup_segr d ~path:(up_path d G.s) ~kind:Reservation.Up
      ~max_bw:(gbps 100.) ~min_bw:(mbps 1.)
  with
  | Error e -> Alcotest.fail e
  | Ok segr -> (
      match segr.active with
      | Some v ->
          Alcotest.(check bool) "capped below demand" true
            (Bandwidth.to_bps v.bw < 100e9);
          Alcotest.(check bool) "positive" true (Bandwidth.is_positive v.bw)
      | None -> Alcotest.fail "no active version")

let seg_setup_denied_cleans_up () =
  let d = make_deployment () in
  (* min_bw above the link capacity → denial at the first AS. *)
  (match
     Deployment.setup_segr d ~path:(up_path d G.s) ~kind:Reservation.Up
       ~max_bw:(gbps 500.) ~min_bw:(gbps 200.)
   with
  | Ok _ -> Alcotest.fail "should be denied"
  | Error _ -> ());
  (* No residue: full setup now succeeds with the whole share. *)
  match
    Deployment.setup_segr d ~path:(up_path d G.s) ~kind:Reservation.Up
      ~max_bw:(gbps 32.) ~min_bw:(gbps 31.)
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "temporary state leaked: %s" e

let seg_renewal_and_activation () =
  let d = make_deployment () in
  let segr = Result.get_ok (setup_up d) in
  let v1_bw = (Option.get segr.active).bw in
  (* Renewal: creates a pending version; active unchanged (§4.2). *)
  (match
     Deployment.setup_segr d ~renew:segr.key ~path:segr.path ~kind:Reservation.Up
       ~max_bw:(gbps 1.) ~min_bw:(mbps 10.)
   with
  | Error e -> Alcotest.fail e
  | Ok segr' ->
      Alcotest.(check bool) "same record" true (Ids.equal_res_key segr'.key segr.key);
      (match (segr'.active, segr'.pending) with
      | Some a, Some p ->
          Alcotest.(check (float 1e3)) "active untouched" (Bandwidth.to_bps v1_bw)
            (Bandwidth.to_bps a.bw);
          Alcotest.(check int) "pending is v2" 2 p.version
      | _ -> Alcotest.fail "expected active+pending"));
  (* Explicit activation switches the version everywhere. *)
  (match Deployment.activate_segr d ~key:segr.key with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match (segr.active, segr.pending) with
  | Some a, None -> Alcotest.(check int) "v2 active" 2 a.version
  | _ -> Alcotest.fail "activation did not switch");
  (* On-path state agrees. *)
  let mid = List.nth segr.path 1 in
  match Cserv.transit_segr (Deployment.cserv d mid.asn) segr.key with
  | Some ts ->
      Alcotest.(check int) "transit active v2" 2
        (Option.get ts.segr.active).Reservation.version
  | None -> Alcotest.fail "missing transit record"

let seg_activation_without_pending_fails () =
  let d = make_deployment () in
  let segr = Result.get_ok (setup_up d) in
  match Deployment.activate_segr d ~key:segr.key with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "activated with no pending version"

let seg_request_auth_rejected () =
  (* A request whose MACs were made with the wrong key is refused. *)
  let d = make_deployment () in
  let c = Deployment.cserv d G.s in
  let req, _auth =
    Result.get_ok
      (Cserv.make_seg_request c ~path:(up_path d G.s) ~kind:Reservation.Up
         ~max_bw:(gbps 1.) ~min_bw:(mbps 1.) ~renew:None)
  in
  (* Forge MACs with a random key. *)
  let bogus_key = Crypto.Cmac.of_secret (Bytes.make 16 'e') in
  let digest = Protocol.seg_request_digest req in
  let forged =
    Protocol.authenticate_request ~digest
      ~key_for:(fun _ -> bogus_key)
      ~ases:(Path.ases req.path)
  in
  let first_transit = List.nth req.path 1 in
  (match
     Cserv.handle_seg_request_forward (Deployment.cserv d first_transit.asn) ~req
       ~auth:forged
   with
  | `Deny Protocol.Bad_authentication -> ()
  | `Deny r -> Alcotest.failf "wrong denial: %a" Protocol.pp_deny_reason r
  | `Continue _ -> Alcotest.fail "forged request accepted");
  (* Missing MAC for the AS: also refused. *)
  match
    Cserv.handle_seg_request_forward (Deployment.cserv d first_transit.asn) ~req
      ~auth:[]
  with
  | `Deny Protocol.Bad_authentication -> ()
  | _ -> Alcotest.fail "absent MAC accepted"

let seg_reply_tampering_rejected () =
  let d = make_deployment () in
  let c = Deployment.cserv d G.s in
  let req, auth =
    Result.get_ok
      (Cserv.make_seg_request c ~path:(up_path d G.s) ~kind:Reservation.Up
         ~max_bw:(gbps 1.) ~min_bw:(mbps 1.) ~renew:None)
  in
  (* Run the protocol manually, then tamper with a reply hop. *)
  List.iter
    (fun (hop : Path.hop) ->
      match
        Cserv.handle_seg_request_forward (Deployment.cserv d hop.asn) ~req ~auth
      with
      | `Continue _ -> ()
      | `Deny r -> Alcotest.failf "unexpected denial: %a" Protocol.pp_deny_reason r)
    req.path;
  let hops =
    List.map
      (fun (hop : Path.hop) ->
        Cserv.handle_seg_reply_backward (Deployment.cserv d hop.asn) ~req
          ~final_bw:(gbps 1.))
      req.path
  in
  let tampered =
    match hops with
    | h :: rest -> { h with Protocol.granted = gbps 2. } :: rest
    | [] -> []
  in
  match
    Cserv.process_seg_reply c ~req
      ~reply:(Protocol.Granted { final_bw = gbps 1.; hops = tampered })
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tampered reply accepted"

let registry_whitelist () =
  let d = make_deployment () in
  let segr = Result.get_ok (setup_up d) in
  let c = Deployment.cserv d G.s in
  let allowed = Ids.Asn_set.of_list [ G.d ] in
  (match Cserv.register_segr c ~key:segr.key ~allowed:(Some allowed) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let dst = Path.destination segr.path in
  Alcotest.(check int) "whitelisted requester sees it" 1
    (List.length (Cserv.registry_query c ~requester:G.d ~dst));
  Alcotest.(check int) "other requester filtered" 0
    (List.length (Cserv.registry_query c ~requester:G.e ~dst));
  (* Open registration. *)
  (match Cserv.register_segr c ~key:segr.key ~allowed:None with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "open to all" 1
    (List.length (Cserv.registry_query c ~requester:G.e ~dst))

let misbehavior_denies_future_requests () =
  let d = make_deployment () in
  let x1 = Deployment.cserv d G.x1 in
  Cserv.report_misbehavior x1 ~src:G.s;
  Alcotest.(check bool) "denied flag" true (Cserv.is_denied x1 ~src:G.s);
  match setup_up d with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "reservation from punished AS accepted"

let renewal_rate_limited () =
  let d = make_deployment () in
  (* Build a full EER first. *)
  let _ = Result.get_ok (setup_up d) in
  let segr = Result.get_ok
      (Deployment.setup_segr d ~path:(up_path d G.s) ~kind:Reservation.Up
         ~max_bw:(gbps 1.) ~min_bw:(mbps 1.)) in
  ignore segr;
  let c = Deployment.cserv d G.s in
  (* Make an EER to Y1 (leaf → core over just the up-SegR). *)
  let routes = Deployment.lookup_eer_routes d ~src:G.s ~dst:G.y1 in
  Alcotest.(check bool) "route exists" true (routes <> []);
  let eer =
    Result.get_ok
      (Deployment.setup_eer d ~route:(List.hd routes) ~src_host:(Ids.host 1)
         ~dst_host:(Ids.host 2) ~bw:(mbps 50.))
  in
  (* First renewal passes, immediate second one is rate limited (§4.2). *)
  (match
     Cserv.make_eer_request c ~path:eer.path ~src_host:eer.src_host
       ~dst_host:eer.dst_host ~bw:(mbps 50.) ~segr_keys:eer.segr_keys
       ~renew:(Some eer.key)
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  match
    Cserv.make_eer_request c ~path:eer.path ~src_host:eer.src_host
      ~dst_host:eer.dst_host ~bw:(mbps 50.) ~segr_keys:eer.segr_keys
      ~renew:(Some eer.key)
  with
  | Error "renewal rate limited" -> ()
  | Error e -> Alcotest.failf "wrong error: %s" e
  | Ok _ -> Alcotest.fail "second immediate renewal accepted"

let suite =
  [
    Alcotest.test_case "SegR setup success" `Quick seg_setup_success;
    Alcotest.test_case "SegR setup grants path minimum" `Quick seg_setup_grants_path_minimum;
    Alcotest.test_case "SegR denial cleans up" `Quick seg_setup_denied_cleans_up;
    Alcotest.test_case "SegR renewal and activation" `Quick seg_renewal_and_activation;
    Alcotest.test_case "activation without pending fails" `Quick seg_activation_without_pending_fails;
    Alcotest.test_case "request auth rejected" `Quick seg_request_auth_rejected;
    Alcotest.test_case "reply tampering rejected" `Quick seg_reply_tampering_rejected;
    Alcotest.test_case "registry whitelist" `Quick registry_whitelist;
    Alcotest.test_case "misbehavior denies future requests" `Quick misbehavior_denies_future_requests;
    Alcotest.test_case "EER renewal rate limited" `Quick renewal_rate_limited;
  ]
