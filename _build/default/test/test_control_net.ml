(** Tests for control-plane transport and the denial-of-capability
    protections of §5.3: control-class messages keep their latency
    under best-effort floods; unprotected best-effort requests
    starve. *)

open Colibri_types
open Colibri_topology
open Colibri

let gbps = Bandwidth.of_gbps

let rig () =
  let topo = Topology_gen.linear ~n:3 ~capacity:(gbps 1.) in
  let engine = Net.Engine.create () in
  let cn = Control_net.create ~engine topo in
  let route = [ Ids.asn ~isd:1 ~num:1; Ids.asn ~isd:1 ~num:2; Ids.asn ~isd:1 ~num:3 ] in
  (engine, cn, route)

let baseline_latency () =
  let _, cn, route = rig () in
  match
    Control_net.measure_latency cn ~route ~cls:Net.Traffic_class.Colibri_control
      ~bytes:500 ~timeout:1.0
  with
  | Some latency ->
      (* Two hops at 5 ms propagation each plus serialization. *)
      Alcotest.(check bool) (Printf.sprintf "≈10ms (%.4f)" latency) true
        (latency > 0.009 && latency < 0.02)
  | None -> Alcotest.fail "undelivered on idle network"

let control_survives_flood () =
  (* §5.3: a best-effort flood at 3× link capacity on the first hop.
     The prioritized control message keeps its latency. *)
  let engine, cn, route = rig () in
  let flood =
    Control_net.flood cn
      ~src:(Ids.asn ~isd:1 ~num:1)
      ~dst:(Ids.asn ~isd:1 ~num:2)
      ~rate:(gbps 3.) ()
  in
  (* Let the flood build a standing queue. *)
  Net.Engine.run engine ~until:0.1;
  (match
     Control_net.measure_latency cn ~route
       ~cls:
         (Control_net.class_of_protection Control_net.Prioritized_control)
       ~bytes:500 ~timeout:1.0
   with
  | Some latency ->
      Alcotest.(check bool)
        (Printf.sprintf "control latency unchanged under flood (%.4f)" latency)
        true (latency < 0.05)
  | None -> Alcotest.fail "prioritized control message lost under flood");
  Net.Source.stop flood

let best_effort_request_starves () =
  (* The same request sent unprotected (plain best effort) is stuck
     behind or dropped from the flooded queue. *)
  let engine, cn, route = rig () in
  let flood =
    Control_net.flood cn
      ~src:(Ids.asn ~isd:1 ~num:1)
      ~dst:(Ids.asn ~isd:1 ~num:2)
      ~rate:(gbps 3.) ()
  in
  Net.Engine.run engine ~until:0.1;
  let result =
    Control_net.measure_latency cn ~route
      ~cls:(Control_net.class_of_protection Control_net.Unprotected_best_effort)
      ~bytes:500 ~timeout:0.5
  in
  Net.Source.stop flood;
  match result with
  | None -> () (* dropped: the DoC attack succeeded against BE *)
  | Some latency ->
      Alcotest.(check bool)
        (Printf.sprintf "if delivered at all, far slower (%.4f)" latency)
        true (latency > 0.02)

let protection_classes () =
  Alcotest.(check bool) "unprotected is BE" true
    (Control_net.class_of_protection Control_net.Unprotected_best_effort
    = Net.Traffic_class.Best_effort);
  Alcotest.(check bool) "prioritized is control class" true
    (Control_net.class_of_protection Control_net.Prioritized_control
    = Net.Traffic_class.Colibri_control);
  Alcotest.(check bool) "over-reservation is control class" true
    (Control_net.class_of_protection Control_net.Over_reservation
    = Net.Traffic_class.Colibri_control)

let broken_route_is_lost () =
  let _, cn, _ = rig () in
  let bogus = [ Ids.asn ~isd:1 ~num:1; Ids.asn ~isd:9 ~num:9 ] in
  match
    Control_net.measure_latency cn ~route:bogus
      ~cls:Net.Traffic_class.Colibri_control ~bytes:100 ~timeout:0.2
  with
  | None -> ()
  | Some _ -> Alcotest.fail "message crossed a nonexistent link"

let suite =
  [
    Alcotest.test_case "baseline latency" `Quick baseline_latency;
    Alcotest.test_case "control survives flood (§5.3)" `Quick control_survives_flood;
    Alcotest.test_case "best-effort request starves" `Quick best_effort_request_starves;
    Alcotest.test_case "protection classes" `Quick protection_classes;
    Alcotest.test_case "broken route is lost" `Quick broken_route_is_lost;
  ]
