(** Focused unit tests for gateway and router in isolation (no
    deployment): registration validation, version pruning, timestamp
    uniqueness, SegR control-packet routing, freshness boundaries, and
    the explicit watch API. *)

open Colibri_types
open Colibri

let asn n = Ids.asn ~isd:1 ~num:n
let mbps = Bandwidth.of_mbps
let gbps = Bandwidth.of_gbps

let path2 : Path.t =
  [
    Path.hop ~asn:(asn 1) ~ingress:0 ~egress:1;
    Path.hop ~asn:(asn 2) ~ingress:1 ~egress:0;
  ]

let mk_eer ?(res_id = 1) ?(versions = []) () : Reservation.eer =
  {
    key = { src_as = asn 1; res_id };
    path = path2;
    src_host = Ids.host 1;
    dst_host = Ids.host 2;
    segr_keys = [];
    versions;
  }

let v n ?(bw = mbps 100.) exp : Reservation.version = { version = n; bw; exp_time = exp }

let sigmas2 = [ Bytes.make 16 'a'; Bytes.make 16 'b' ]

let gateway_register_validation () =
  let clock () = 0. in
  let gw = Gateway.create ~clock (asn 1) in
  (* Wrong origin AS. *)
  let foreign = { (mk_eer ()) with key = { src_as = asn 9; res_id = 1 } } in
  (match Gateway.register gw ~eer:foreign ~version:(v 1 16.) ~sigmas:sigmas2 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "foreign EER registered");
  (* Wrong sigma count. *)
  (match Gateway.register gw ~eer:(mk_eer ()) ~version:(v 1 16.) ~sigmas:[ Bytes.make 16 'a' ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "short sigma list accepted");
  (* Correct registration. *)
  (match Gateway.register gw ~eer:(mk_eer ~versions:[ v 1 16. ] ()) ~version:(v 1 16.) ~sigmas:sigmas2 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "registered" 1 (Gateway.reservation_count gw)

let gateway_sweep_removes_lapsed () =
  let now = ref 0. in
  let gw = Gateway.create ~clock:(fun () -> !now) (asn 1) in
  let eer = mk_eer ~versions:[ v 1 16. ] () in
  (match Gateway.register gw ~eer ~version:(v 1 16.) ~sigmas:sigmas2 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  now := 20.;
  Gateway.sweep gw;
  Alcotest.(check int) "swept" 0 (Gateway.reservation_count gw)

let gateway_unique_timestamps () =
  (* Multiple sends within one clock tick must yield distinct Ts. *)
  let gw = Gateway.create ~burst:1e6 ~clock:(fun () -> 0.) (asn 1) in
  let eer = mk_eer ~versions:[ v 1 ~bw:(gbps 10.) 16. ] () in
  (match Gateway.register gw ~eer ~version:(v 1 ~bw:(gbps 10.) 16.) ~sigmas:sigmas2 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let seen = Hashtbl.create 64 in
  for _ = 1 to 50 do
    match Gateway.send gw ~res_id:1 ~payload_len:0 with
    | Ok (pkt, _) ->
        let ts = Timebase.Ts.to_int pkt.Packet.ts in
        Alcotest.(check bool) "fresh ts" false (Hashtbl.mem seen ts);
        Hashtbl.replace seen ts ()
    | Error e -> Alcotest.failf "send: %a" Gateway.pp_drop_reason e
  done

let gateway_stats_track () =
  let gw = Gateway.create ~clock:(fun () -> 0.) (asn 1) in
  let eer = mk_eer ~versions:[ v 1 16. ] () in
  ignore (Gateway.register gw ~eer ~version:(v 1 16.) ~sigmas:sigmas2);
  ignore (Gateway.send gw ~res_id:1 ~payload_len:100);
  ignore (Gateway.send gw ~res_id:77 ~payload_len:100);
  let st = Gateway.stats gw in
  Alcotest.(check int) "sent" 1 st.sent_pkts;
  Alcotest.(check int) "dropped other" 1 st.dropped_other

(* -- Router unit tests -- *)

let secret = Hvf.as_secret_of_material (Bytes.make 16 'K')

let seg_packet () : Packet.t =
  let res_info : Packet.res_info =
    { src_as = asn 1; res_id = 3; bw = mbps 100.; exp_time = 300.; version = 1 }
  in
  let hop = List.nth path2 1 in
  let token = Hvf.seg_token secret ~res_info ~hop in
  {
    kind = Packet.Seg;
    path = path2;
    res_info;
    eer_info = None;
    ts = Timebase.Ts.of_times ~exp_time:300. ~now:299.;
    hvfs = [| Bytes.make 4 'x'; token |];
    payload_len = 64;
  }

let router_routes_seg_to_cserv () =
  let now = ref 299. in
  let r = Router.create ~ofd:`None ~duplicates:`None ~secret ~clock:(fun () -> !now) (asn 2) in
  let pkt = seg_packet () in
  match Router.process r ~packet:pkt ~actual_size:(Packet.wire_size pkt) with
  | Ok Router.To_cserv -> ()
  | Ok _ -> Alcotest.fail "SegR packet not routed to CServ"
  | Error e -> Alcotest.failf "dropped: %a" Router.pp_drop_reason e

let router_seg_bad_token_dropped () =
  let r = Router.create ~ofd:`None ~duplicates:`None ~secret ~clock:(fun () -> 299.) (asn 2) in
  let pkt = seg_packet () in
  pkt.hvfs.(1) <- Bytes.make 4 'z';
  match Router.process r ~packet:pkt ~actual_size:(Packet.wire_size pkt) with
  | Error Router.Invalid_hvf -> ()
  | _ -> Alcotest.fail "bad SegR token accepted"

let eer_packet ~now : Packet.t =
  let res_info : Packet.res_info =
    { src_as = asn 1; res_id = 4; bw = mbps 100.; exp_time = now +. 16.; version = 1 }
  in
  let eer_info : Packet.eer_info = { src_host = Ids.host 1; dst_host = Ids.host 2 } in
  let hop = List.nth path2 1 in
  let sigma = Hvf.sigma_of_bytes (Hvf.hop_auth secret ~res_info ~eer_info ~hop) in
  let ts = Timebase.Ts.of_times ~exp_time:res_info.exp_time ~now in
  let hops = 2 in
  let size = Packet.header_len ~hops + 10 in
  {
    kind = Packet.Eer;
    path = path2;
    res_info;
    eer_info = Some eer_info;
    ts;
    hvfs = [| Bytes.make 4 'x'; Hvf.eer_hvf sigma ~ts ~pkt_size:size |];
    payload_len = 10;
  }

let router_delivers_at_last_hop () =
  let r = Router.create ~ofd:`None ~duplicates:`None ~secret ~clock:(fun () -> 0.) (asn 2) in
  let pkt = eer_packet ~now:0. in
  match Router.process r ~packet:pkt ~actual_size:(Packet.wire_size pkt) with
  | Ok (Router.Deliver h) -> Alcotest.(check int) "to dst host" 2 h.addr
  | Ok _ -> Alcotest.fail "expected Deliver"
  | Error e -> Alcotest.failf "dropped: %a" Router.pp_drop_reason e

let router_freshness_boundary () =
  (* Freshness window w: accepted at now = send + w - ε, rejected at
     now = send + w + ε. *)
  let w = 2.0 in
  let now = ref 0. in
  let r =
    Router.create ~freshness_window:w ~ofd:`None ~duplicates:`None ~secret
      ~clock:(fun () -> !now)
      (asn 2)
  in
  let pkt = eer_packet ~now:0. in
  now := w -. 0.01;
  (match Router.process r ~packet:pkt ~actual_size:(Packet.wire_size pkt) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "fresh packet dropped: %a" Router.pp_drop_reason e);
  now := w +. 0.01;
  match Router.process r ~packet:pkt ~actual_size:(Packet.wire_size pkt) with
  | Error Router.Stale_timestamp -> ()
  | _ -> Alcotest.fail "stale packet accepted"

let router_watch_installs_bucket () =
  let r = Router.create ~ofd:`None ~duplicates:`None ~secret ~clock:(fun () -> 0.) (asn 2) in
  Alcotest.(check int) "none watched" 0 (Router.watched_count r);
  Router.watch r ~key:{ src_as = asn 1; res_id = 4 } ~rate:(mbps 1.);
  Alcotest.(check int) "one watched" 1 (Router.watched_count r);
  (* A burst beyond the watched rate is policed. *)
  let pkt = eer_packet ~now:0. in
  let policed = ref 0 in
  (* distinct packets to bypass any dup logic (disabled anyway) *)
  for i = 1 to 600 do
    let p = { pkt with Packet.ts = Timebase.Ts.of_int (Timebase.Ts.to_int pkt.Packet.ts - i) } in
    (* recompute hvf for the new ts *)
    let hop = List.nth path2 1 in
    let sigma =
      Hvf.sigma_of_bytes
        (Hvf.hop_auth secret ~res_info:p.res_info
           ~eer_info:(Option.get p.eer_info) ~hop)
    in
    p.hvfs.(1) <- Hvf.eer_hvf sigma ~ts:p.ts ~pkt_size:(Packet.wire_size p);
    match Router.process r ~packet:p ~actual_size:(Packet.wire_size p) with
    | Error Router.Policed -> incr policed
    | _ -> ()
  done;
  Alcotest.(check bool) (Printf.sprintf "policed %d" !policed) true (!policed > 300)

(* -- Sharded dataplane regressions -- *)

let sharded_gateway_adversarial_res_ids () =
  (* Regression: shard selection used [abs (res_id · φ) mod shards];
     [abs min_int = min_int] gave a negative shard index and an
     out-of-bounds array access. Adversarial ResIds must map into
     range and flow through the normal drop path, never raise. *)
  let sg = Dataplane_shard.Sharded_gateway.create ~clock:(fun () -> 0.) ~shards:4 (asn 1) in
  let ids = [ min_int; max_int; min_int + 1; 0; -1; 0x4000_0000_0000_0000 ] in
  List.iter
    (fun res_id ->
      let i = Dataplane_shard.Sharded_gateway.shard_of sg res_id in
      Alcotest.(check bool)
        (Printf.sprintf "shard of %d in range (got %d)" res_id i)
        true
        (i >= 0 && i < 4);
      match Dataplane_shard.Sharded_gateway.send sg ~res_id ~payload_len:100 with
      | Error _ -> () (* unknown reservation: the expected verdict *)
      | Ok _ -> Alcotest.failf "unregistered res_id %d sent" res_id)
    ids

let sharded_router_short_packet_is_parse_error () =
  (* Regression: the dispatcher read the dispatch byte with an
     unchecked [Bytes.get raw 8], so any frame under 9 bytes raised
     [Invalid_argument] instead of producing the parser's verdict. *)
  let sr =
    Dataplane_shard.Sharded_router.create ~secret ~clock:(fun () -> 0.) ~shards:4 (asn 2)
  in
  List.iter
    (fun len ->
      let raw = Bytes.make len '\000' in
      match Dataplane_shard.Sharded_router.process_bytes sr ~raw ~payload_len:0 with
      | Error (Router.Parse_error _) -> ()
      | Ok _ -> Alcotest.failf "%d-byte frame accepted" len
      | Error e ->
          Alcotest.failf "%d-byte frame: wrong verdict %a" len Router.pp_drop_reason e)
    [ 0; 1; 8 ]

let suite =
  [
    Alcotest.test_case "gateway: register validation" `Quick gateway_register_validation;
    Alcotest.test_case "gateway: sweep removes lapsed" `Quick gateway_sweep_removes_lapsed;
    Alcotest.test_case "gateway: unique timestamps" `Quick gateway_unique_timestamps;
    Alcotest.test_case "gateway: stats" `Quick gateway_stats_track;
    Alcotest.test_case "router: SegR packet to CServ" `Quick router_routes_seg_to_cserv;
    Alcotest.test_case "router: bad SegR token dropped" `Quick router_seg_bad_token_dropped;
    Alcotest.test_case "router: delivers at last hop" `Quick router_delivers_at_last_hop;
    Alcotest.test_case "router: freshness boundary" `Quick router_freshness_boundary;
    Alcotest.test_case "router: watch installs bucket" `Quick router_watch_installs_bucket;
    Alcotest.test_case "sharded gateway: adversarial res_ids" `Quick
      sharded_gateway_adversarial_res_ids;
    Alcotest.test_case "sharded router: short packet is parse error" `Quick
      sharded_router_short_packet_is_parse_error;
  ]
