(** Tests for the admission algorithms (§4.7): bounded-tube-fairness
    SegR admission with memoized aggregates, and constant-time EER
    admission, including the transfer-AS proportional-sharing rule. *)

open Colibri_types
open Colibri

let gbps = Bandwidth.of_gbps
let mbps = Bandwidth.of_mbps

(* One 10 Gbps interface pair (1 → 2); Colibri share 0.8 → 8 Gbps. *)
let capacity _ = gbps 10.
let share = 0.8
let colibri_cap = 8e9

let asn n = Ids.asn ~isd:1 ~num:n
let key src id : Ids.res_key = { src_as = asn src; res_id = id }

let mk () = Admission.Seg.create ~capacity ~share ()

let admit ?(src = 1) ?(version = 1) ?(demand = gbps 1.) ?(min_bw = mbps 1.)
    ?(ingress = 1) ?(egress = 2) ?(exp_time = 300.) ?(now = 0.) t k =
  Admission.Seg.admit t ~key:k ~version ~src:(asn src) ~ingress ~egress ~demand
    ~min_bw ~exp_time ~now

let granted_bps = function
  | Admission.Granted bw -> Bandwidth.to_bps bw
  | Admission.Denied _ -> Alcotest.fail "expected grant"

let seg_first_request_gets_demand () =
  let t = mk () in
  let g = granted_bps (admit t (key 1 1) ~demand:(gbps 1.)) in
  Alcotest.(check (float 1.)) "full demand granted" 1e9 g;
  Alcotest.(check int) "recorded" 1 (Admission.Seg.count t)

let seg_below_min_denied_and_stateless () =
  let t = mk () in
  (* Fill the egress almost completely. *)
  ignore (admit t (key 1 1) ~demand:(gbps 100.) ~min_bw:(mbps 1.));
  let before = Admission.Seg.count t in
  match admit t (key 2 2) ~src:2 ~demand:(gbps 8.) ~min_bw:(gbps 7.9) with
  | Admission.Granted _ -> Alcotest.fail "should be denied"
  | Admission.Denied { available } ->
      Alcotest.(check bool) "some bandwidth quoted" true
        (Bandwidth.to_bps available >= 0.);
      Alcotest.(check int) "no state left" before (Admission.Seg.count t)

let seg_sum_never_exceeds_capacity () =
  let t = mk () in
  let total = ref 0. in
  for i = 1 to 50 do
    match admit t (key i i) ~src:i ~demand:(gbps 2.) ~min_bw:(mbps 0.001) with
    | Admission.Granted bw -> total := !total +. Bandwidth.to_bps bw
    | Admission.Denied _ -> ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "sum %.2e ≤ cap %.2e" !total colibri_cap)
    true
    (!total <= colibri_cap +. 1.);
  Alcotest.(check (float 1e3)) "allocated counter agrees" !total
    (Bandwidth.to_bps (Admission.Seg.allocated_on t ~egress:2))

let seg_botnet_size_independence () =
  (* Grants are fixed until renewal (§4.2), so fairness re-equilibrates
     at SegR-lifetime granularity: a flooding source can fill the link
     for at most one lifetime (≤ 5 min), after which competing demand
     is admitted with its proportional share. Two properties checked:
     (i) the flood can never exceed the capacity (no amplification by
     reservation count — "botnet-size independence" of the total), and
     (ii) after the renewal boundary a benign AS obtains bandwidth. *)
  let t = mk () in
  let attacker_total = ref 0. in
  for i = 1 to 100 do
    match admit t (key 666 i) ~src:666 ~demand:(gbps 8.) ~min_bw:(mbps 0.001) with
    | Admission.Granted bw -> attacker_total := !attacker_total +. Bandwidth.to_bps bw
    | Admission.Denied _ -> ()
  done;
  Alcotest.(check bool) "flood bounded by capacity" true
    (!attacker_total <= colibri_cap +. 1.);
  (* During the flood's lifetime the benign AS may be refused — the
     transient the paper bounds by the 5-minute SegR lifetime. *)
  (* At t=301 the flood expired; the benign AS gets served. *)
  (match
     admit t (key 7 1000) ~src:7 ~demand:(gbps 1.) ~min_bw:(mbps 0.001)
       ~exp_time:601. ~now:301.
   with
  | Admission.Granted bw ->
      Alcotest.(check bool) "benign served after renewal boundary" true
        (Bandwidth.to_bps bw > 0.)
  | Admission.Denied _ -> Alcotest.fail "benign AS starved after expiry");
  (* The attacker renewing against the benign AS's standing demand now
     gets a squeezed share, not the whole link. *)
  match
    admit t (key 666 200) ~src:666 ~demand:(gbps 8.) ~min_bw:(mbps 0.001)
      ~exp_time:601. ~now:301.
  with
  | Admission.Granted bw ->
      Alcotest.(check bool) "attacker renewal leaves benign share intact" true
        (Bandwidth.to_bps bw
        <= colibri_cap -. 1e9 +. 1.)
  | Admission.Denied _ -> ()

let seg_group_capped_by_ingress () =
  (* Rule 1: total demand from one ingress is limited by its capacity —
     many sources behind one ingress cannot over-claim. *)
  let t = mk () in
  let sum = ref 0. in
  for i = 1 to 20 do
    match admit t (key i i) ~src:i ~demand:(gbps 10.) ~min_bw:(mbps 0.001) ~ingress:1 with
    | Admission.Granted bw -> sum := !sum +. Bandwidth.to_bps bw
    | Admission.Denied _ -> ()
  done;
  Alcotest.(check bool) "ingress-capped" true (!sum <= colibri_cap +. 1.)

let seg_duplicate_version_denied () =
  let t = mk () in
  ignore (admit t (key 1 1) ~version:1);
  match admit t (key 1 1) ~version:1 with
  | Admission.Denied _ -> ()
  | Admission.Granted _ -> Alcotest.fail "duplicate (key, version) admitted"

let seg_set_granted_shrinks () =
  let t = mk () in
  ignore (admit t (key 1 1) ~demand:(gbps 2.));
  (* Backward pass: path-wide minimum was lower. *)
  (match Admission.Seg.set_granted t ~key:(key 1 1) ~version:1 ~granted:(gbps 1.) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check (float 1.)) "allocation shrunk" 1e9
    (Bandwidth.to_bps (Admission.Seg.allocated_on t ~egress:2));
  (match Admission.Seg.granted_of t ~key:(key 1 1) ~version:1 with
  | Some bw -> Alcotest.(check (float 1.)) "entry updated" 1e9 (Bandwidth.to_bps bw)
  | None -> Alcotest.fail "entry missing");
  (* Raising is refused. *)
  match Admission.Seg.set_granted t ~key:(key 1 1) ~version:1 ~granted:(gbps 5.) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "raise accepted"

let seg_remove_releases () =
  let t = mk () in
  ignore (admit t (key 1 1) ~demand:(gbps 8.) ~min_bw:(mbps 1.));
  Admission.Seg.remove t ~key:(key 1 1) ~version:1;
  Alcotest.(check int) "empty" 0 (Admission.Seg.count t);
  Alcotest.(check (float 1e-3)) "allocation released" 0.
    (Bandwidth.to_bps (Admission.Seg.allocated_on t ~egress:2));
  (* Idempotent. *)
  Admission.Seg.remove t ~key:(key 1 1) ~version:1;
  (* Full capacity available again. *)
  let g = granted_bps (admit t (key 2 2) ~src:2 ~demand:(gbps 8.) ~min_bw:(gbps 6.)) in
  Alcotest.(check bool) "capacity recovered" true (g >= 6e9)

let seg_expiry_releases () =
  let t = mk () in
  ignore (admit t (key 1 1) ~demand:(gbps 8.) ~min_bw:(mbps 1.) ~exp_time:300. ~now:0.);
  (* After expiry, a new admission sweeping at now=301 sees free capacity. *)
  let g =
    granted_bps
      (admit t (key 2 2) ~src:2 ~demand:(gbps 8.) ~min_bw:(gbps 6.) ~exp_time:600.
         ~now:301.)
  in
  Alcotest.(check bool) "expired SegR released" true (g >= 6e9);
  Alcotest.(check int) "swept" 1 (Admission.Seg.count t)

let seg_local_iface_unbounded () =
  (* Ingress 0 (local origin) has no ingress cap; egress still caps. *)
  let t = mk () in
  let g = granted_bps (admit t (key 1 1) ~ingress:0 ~demand:(gbps 20.) ~min_bw:(mbps 1.)) in
  Alcotest.(check bool) "egress caps local traffic" true (g <= colibri_cap +. 1.)

let prop_seg_invariant_allocated_le_capacity =
  QCheck2.Test.make
    ~name:"seg admission: Σ grants per egress ≤ Colibri capacity (random ops)"
    ~count:30
    QCheck2.Gen.(list_size (return 200) (tup4 (1 -- 8) (1 -- 4) (1 -- 1000) (1 -- 3)))
    (fun ops ->
      let t = mk () in
      let i = ref 0 in
      List.for_all
        (fun (src, egress, demand_mb, op) ->
          incr i;
          let k = key src !i in
          (match op with
          | 1 | 2 ->
              ignore
                (admit t k ~src ~egress ~demand:(mbps (float_of_int demand_mb))
                   ~min_bw:(mbps 0.001))
          | _ -> Admission.Seg.remove t ~key:(key src (max 1 (!i - 5))) ~version:1);
          List.for_all
            (fun eg ->
              Bandwidth.to_bps (Admission.Seg.allocated_on t ~egress:eg)
              <= colibri_cap +. 1.)
            [ 1; 2; 3; 4 ])
        ops)

(* ---------- EER admission ---------- *)

let seg_a : Ids.res_key = { src_as = asn 100; res_id = 1 }
let seg_b : Ids.res_key = { src_as = asn 200; res_id = 1 }

let eer_admit ?(version = 1) ?(segrs = [ (seg_a, gbps 1.) ]) ?via_up
    ?(demand = mbps 100.) ?(exp_time = 16.) ?(now = 0.) t k =
  Admission.Eer.admit t ~key:k ~version ~segrs ~via_up ~demand ~exp_time ~now

let eer_fits_and_fills () =
  let t = Admission.Eer.create () in
  (* Ten 100 Mbps EERs fit a 1 Gbps SegR; the eleventh does not. *)
  for i = 1 to 10 do
    match eer_admit t (key 1 i) with
    | Admission.Granted _ -> ()
    | Admission.Denied _ -> Alcotest.failf "EER %d should fit" i
  done;
  Alcotest.(check (float 1e3)) "fully allocated" 1e9
    (Bandwidth.to_bps (Admission.Eer.allocated_over t seg_a));
  match eer_admit t (key 1 11) with
  | Admission.Denied { available } ->
      Alcotest.(check bool) "nothing left" true (Bandwidth.to_bps available < 1e6)
  | Admission.Granted _ -> Alcotest.fail "over-allocation"

let eer_multi_segr_min () =
  (* An EER over two SegRs is constrained by the tighter one. *)
  let t = Admission.Eer.create () in
  let segrs = [ (seg_a, gbps 1.); (seg_b, mbps 300.) ] in
  (match eer_admit t (key 1 1) ~segrs ~demand:(mbps 250.) with
  | Admission.Granted _ -> ()
  | Admission.Denied _ -> Alcotest.fail "250 Mb should fit");
  match eer_admit t (key 1 2) ~segrs ~demand:(mbps 100.) with
  | Admission.Denied { available } ->
      Alcotest.(check bool) "limited by smaller SegR" true
        (Bandwidth.to_bps available <= 50e6 +. 1.)
  | Admission.Granted _ -> Alcotest.fail "should exceed seg_b"

let eer_versions_count_max () =
  (* Renewal with the same bandwidth must not double-book (§4.2):
     versions of one EER contribute their maximum. *)
  let t = Admission.Eer.create () in
  ignore (eer_admit t (key 1 1) ~version:1 ~demand:(mbps 600.));
  (match eer_admit t (key 1 1) ~version:2 ~demand:(mbps 600.) with
  | Admission.Granted _ -> ()
  | Admission.Denied _ -> Alcotest.fail "renewal at same bw must fit");
  Alcotest.(check (float 1e3)) "no double booking" 600e6
    (Bandwidth.to_bps (Admission.Eer.allocated_over t seg_a));
  (* A version increase books only the delta. *)
  (match eer_admit t (key 1 1) ~version:3 ~demand:(mbps 900.) with
  | Admission.Granted _ -> ()
  | Admission.Denied _ -> Alcotest.fail "delta should fit");
  Alcotest.(check (float 1e3)) "max counted" 900e6
    (Bandwidth.to_bps (Admission.Eer.allocated_over t seg_a))

let eer_version_expiry_releases () =
  let t = Admission.Eer.create () in
  ignore (eer_admit t (key 1 1) ~version:1 ~demand:(mbps 800.) ~exp_time:16. ~now:0.);
  (* At t=20 the version expired; new flows can use the space. *)
  match eer_admit t (key 2 2) ~version:1 ~demand:(mbps 800.) ~exp_time:36. ~now:20. with
  | Admission.Granted _ -> ()
  | Admission.Denied _ -> Alcotest.fail "expired EER still booked"

let eer_remove_version () =
  let t = Admission.Eer.create () in
  ignore (eer_admit t (key 1 1) ~version:1 ~demand:(mbps 800.));
  Admission.Eer.remove_version t ~key:(key 1 1) ~version:1 ~now:0.;
  Alcotest.(check (float 1e-3)) "released" 0.
    (Bandwidth.to_bps (Admission.Eer.allocated_over t seg_a))

let eer_transfer_proportional_sharing () =
  (* Transfer AS: two up-SegRs (1 Gbps each) compete for one 1 Gbps
     core SegR. When oversubscribed, each up-SegR gets a share
     proportional to its demand rather than first-come-takes-all. *)
  let t = Admission.Eer.create () in
  let core : Ids.res_key = { src_as = asn 300; res_id = 9 } in
  let up1 = seg_a and up2 = seg_b in
  let admit_via up k demand =
    Admission.Eer.admit t ~key:k ~version:1
      ~segrs:[ (up, gbps 1.); (core, gbps 1.) ]
      ~via_up:(Some (core, up, gbps 1.))
      ~demand ~exp_time:16. ~now:0.
  in
  (* up1's EERs fill 800 Mbps. *)
  for i = 1 to 8 do
    ignore (admit_via up1 (key 1 i) (mbps 100.))
  done;
  (* up2 demands 600 Mbps; the core is now oversubscribed, so up2 gets
     its proportional share rather than nothing. *)
  let up2_granted = ref 0. in
  for i = 1 to 6 do
    match admit_via up2 (key 2 i) (mbps 100.) with
    | Admission.Granted bw -> up2_granted := !up2_granted +. Bandwidth.to_bps bw
    | Admission.Denied _ -> ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "up2 got a positive share (%.0f Mbps)" (!up2_granted /. 1e6))
    true
    (!up2_granted > 0.);
  (* Total across both up-SegRs never exceeds the core SegR. *)
  let total = Bandwidth.to_bps (Admission.Eer.allocated_over t core) in
  Alcotest.(check bool)
    (Printf.sprintf "core not over-allocated (%.0f Mbps)" (total /. 1e6))
    true (total <= 1e9 +. 1.)

let prop_eer_never_over_allocates =
  QCheck2.Test.make ~name:"eer admission: Σ over a SegR ≤ SegR bandwidth" ~count:50
    QCheck2.Gen.(list_size (return 100) (pair (1 -- 30) (1 -- 400)))
    (fun ops ->
      let t = Admission.Eer.create () in
      let segr_bw = gbps 1. in
      let i = ref 0 in
      List.for_all
        (fun (flow, demand_mb) ->
          incr i;
          ignore
            (Admission.Eer.admit t ~key:(key 1 flow) ~version:!i
               ~segrs:[ (seg_a, segr_bw) ] ~via_up:None
               ~demand:(mbps (float_of_int demand_mb))
               ~exp_time:16. ~now:0.);
          Bandwidth.to_bps (Admission.Eer.allocated_over t seg_a) <= 1e9 +. 1.)
        ops)

let suite =
  [
    Alcotest.test_case "SegR: first request granted" `Quick seg_first_request_gets_demand;
    Alcotest.test_case "SegR: below-min denied statelessly" `Quick seg_below_min_denied_and_stateless;
    Alcotest.test_case "SegR: Σ grants ≤ capacity" `Quick seg_sum_never_exceeds_capacity;
    Alcotest.test_case "SegR: botnet-size independence" `Quick seg_botnet_size_independence;
    Alcotest.test_case "SegR: ingress capacity caps group" `Quick seg_group_capped_by_ingress;
    Alcotest.test_case "SegR: duplicate version denied" `Quick seg_duplicate_version_denied;
    Alcotest.test_case "SegR: set_granted shrinks only" `Quick seg_set_granted_shrinks;
    Alcotest.test_case "SegR: remove releases" `Quick seg_remove_releases;
    Alcotest.test_case "SegR: expiry releases" `Quick seg_expiry_releases;
    Alcotest.test_case "SegR: local ingress unbounded" `Quick seg_local_iface_unbounded;
    QCheck_alcotest.to_alcotest prop_seg_invariant_allocated_le_capacity;
    Alcotest.test_case "EER: fits and fills" `Quick eer_fits_and_fills;
    Alcotest.test_case "EER: multi-SegR minimum" `Quick eer_multi_segr_min;
    Alcotest.test_case "EER: versions count max (§4.2)" `Quick eer_versions_count_max;
    Alcotest.test_case "EER: version expiry releases" `Quick eer_version_expiry_releases;
    Alcotest.test_case "EER: remove version" `Quick eer_remove_version;
    Alcotest.test_case "EER: transfer proportional sharing" `Quick eer_transfer_proportional_sharing;
    QCheck_alcotest.to_alcotest prop_eer_never_over_allocates;
  ]
