(** Tests for the DRKey infrastructure: fast/slow-side agreement,
    epoch rotation, key hierarchy separation, and caching. *)

open Colibri_types

let a = Ids.asn ~isd:1 ~num:1
let b = Ids.asn ~isd:1 ~num:2
let c = Ids.asn ~isd:2 ~num:7

let with_clock () =
  let sim = Timebase.Sim_clock.create () in
  (sim, Timebase.Sim_clock.clock sim)

let fast_slow_agreement () =
  let _, clock = with_clock () in
  let ks_a = Drkey.Key_server.create ~clock a in
  (* Fast side derives; slow side fetches: both must hold identical
     material (Eq. (1)). *)
  let derived = Drkey.Key_server.derive ks_a ~slow:b in
  let fetched = Drkey.Key_server.fetch ks_a ~requester:b in
  Alcotest.(check string) "same material"
    (Crypto.Hex.of_bytes derived.material)
    (Crypto.Hex.of_bytes fetched.material);
  Alcotest.(check bool) "fast side recorded" true (Ids.equal_asn derived.fast a);
  Alcotest.(check bool) "slow side recorded" true (Ids.equal_asn derived.slow b)

let keys_differ_by_peer_and_direction () =
  let _, clock = with_clock () in
  let ks_a = Drkey.Key_server.create ~clock a in
  let ks_b = Drkey.Key_server.create ~clock b in
  let ab = (Drkey.Key_server.derive ks_a ~slow:b).material in
  let ac = (Drkey.Key_server.derive ks_a ~slow:c).material in
  let ba = (Drkey.Key_server.derive ks_b ~slow:a).material in
  Alcotest.(check bool) "K_{A→B} ≠ K_{A→C}" false (Bytes.equal ab ac);
  Alcotest.(check bool) "K_{A→B} ≠ K_{B→A} (asymmetric)" false (Bytes.equal ab ba)

let epoch_rotation () =
  let sim, clock = with_clock () in
  let ks = Drkey.Key_server.create ~clock a in
  let k0 = (Drkey.Key_server.derive ks ~slow:b).material in
  Timebase.Sim_clock.advance sim (Drkey.Epoch.duration +. 1.);
  let k1 = Drkey.Key_server.derive ks ~slow:b in
  Alcotest.(check bool) "new epoch, new key" false (Bytes.equal k0 k1.material);
  Alcotest.(check int) "epoch number" 1 k1.epoch;
  (* Same epoch stays stable. *)
  let k1' = (Drkey.Key_server.derive ks ~slow:b).material in
  Alcotest.(check bool) "stable within epoch" true (Bytes.equal k1.material k1')

let epoch_arithmetic () =
  Alcotest.(check int) "epoch of t=0" 0 (Drkey.Epoch.of_time 0.);
  Alcotest.(check int) "epoch of 1 day" 1 (Drkey.Epoch.of_time 86_400.);
  Alcotest.(check (float 0.)) "start" 86_400. (Drkey.Epoch.start 1);
  Alcotest.(check (float 0.)) "end" 172_800. (Drkey.Epoch.end_ 1)

let hierarchy_separation () =
  let _, clock = with_clock () in
  let ks = Drkey.Key_server.create ~clock a in
  let ak = Drkey.Key_server.derive ks ~slow:b in
  let p1 = Drkey.protocol_key ak ~protocol:"colibri" in
  let p2 = Drkey.protocol_key ak ~protocol:"other" in
  Alcotest.(check bool) "protocol separation" false (Bytes.equal p1 p2);
  let h1 = Drkey.host_key ak ~protocol:"colibri" ~host:(Ids.host 1) in
  let h2 = Drkey.host_key ak ~protocol:"colibri" ~host:(Ids.host 2) in
  Alcotest.(check bool) "host separation" false (Bytes.equal h1 h2);
  Alcotest.(check bool) "host ≠ protocol key" false (Bytes.equal h1 p1)

let control_and_aead_keys_usable () =
  let _, clock = with_clock () in
  let ks_b = Drkey.Key_server.create ~clock b in
  (* B (fast) derives; A (slow) fetches. MACs made with one side's key
     must verify with the other's. *)
  let fast_key = Drkey.control_mac_key (Drkey.Key_server.derive ks_b ~slow:a) in
  let slow_key = Drkey.control_mac_key (Drkey.Key_server.fetch ks_b ~requester:a) in
  let msg = Bytes.of_string "control-plane payload" in
  let tag = Crypto.Cmac.digest slow_key msg in
  Alcotest.(check bool) "cross-side MAC verifies" true
    (Crypto.Cmac.verify fast_key msg ~tag);
  let aead_f = Drkey.hopauth_aead_key (Drkey.Key_server.derive ks_b ~slow:a) in
  let aead_s = Drkey.hopauth_aead_key (Drkey.Key_server.fetch ks_b ~requester:a) in
  let nonce = Bytes.make 16 'n' in
  let sealed = Crypto.Aead.seal aead_f ~nonce ~ad:Bytes.empty (Bytes.of_string "sigma") in
  (match Crypto.Aead.open_ aead_s ~nonce ~ad:Bytes.empty sealed with
  | Some p -> Alcotest.(check string) "AEAD cross-side" "sigma" (Bytes.to_string p)
  | None -> Alcotest.fail "AEAD open failed")

let cache_hit_and_expiry () =
  let sim, clock = with_clock () in
  let ks_b = Drkey.Key_server.create ~clock b in
  let cache = Drkey.Cache.create ~clock a in
  let fetches = ref 0 in
  let fetch () =
    incr fetches;
    Drkey.Key_server.fetch ks_b ~requester:a
  in
  let k1 = Drkey.Cache.get cache ~fast:b ~fetch in
  let k2 = Drkey.Cache.get cache ~fast:b ~fetch in
  Alcotest.(check int) "one fetch" 1 !fetches;
  Alcotest.(check bool) "same key" true (Bytes.equal k1.material k2.material);
  Alcotest.(check int) "cache size" 1 (Drkey.Cache.size cache);
  (* After the epoch the cached key expires and a refetch happens. *)
  Timebase.Sim_clock.advance sim (Drkey.Epoch.duration +. 1.);
  let k3 = Drkey.Cache.get cache ~fast:b ~fetch in
  Alcotest.(check int) "refetched" 2 !fetches;
  Alcotest.(check bool) "rotated key" false (Bytes.equal k1.material k3.material)

let deterministic_secret () =
  let s1 = Drkey.Secret.of_seed ~asn:a ~epoch:0 ~seed:7 in
  let s2 = Drkey.Secret.of_seed ~asn:a ~epoch:0 ~seed:7 in
  let k1 = (Drkey.derive_as_key s1 ~slow:b).material in
  let k2 = (Drkey.derive_as_key s2 ~slow:b).material in
  Alcotest.(check bool) "seeded secrets deterministic" true (Bytes.equal k1 k2)

let prop_derivation_injective_in_peer =
  QCheck2.Test.make ~name:"drkey: distinct peers get distinct keys" ~count:100
    QCheck2.Gen.(pair (1 -- 10_000) (1 -- 10_000))
    (fun (n1, n2) ->
      QCheck2.assume (n1 <> n2);
      let s = Drkey.Secret.of_seed ~asn:a ~epoch:0 ~seed:1 in
      let k1 = (Drkey.derive_as_key s ~slow:(Ids.asn ~isd:1 ~num:n1)).material in
      let k2 = (Drkey.derive_as_key s ~slow:(Ids.asn ~isd:1 ~num:n2)).material in
      not (Bytes.equal k1 k2))

let suite =
  [
    Alcotest.test_case "fast/slow agreement" `Quick fast_slow_agreement;
    Alcotest.test_case "keys differ by peer and direction" `Quick
      keys_differ_by_peer_and_direction;
    Alcotest.test_case "epoch rotation" `Quick epoch_rotation;
    Alcotest.test_case "epoch arithmetic" `Quick epoch_arithmetic;
    Alcotest.test_case "hierarchy separation" `Quick hierarchy_separation;
    Alcotest.test_case "control/AEAD keys usable cross-side" `Quick
      control_and_aead_keys_usable;
    Alcotest.test_case "cache hit and expiry" `Quick cache_hit_and_expiry;
    Alcotest.test_case "seeded secrets deterministic" `Quick deterministic_secret;
    QCheck_alcotest.to_alcotest prop_derivation_injective_in_peer;
  ]
