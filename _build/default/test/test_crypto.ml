(** Tests for the crypto substrate: AES-128 against FIPS-197 /
    SP 800-38A vectors, AES-CMAC against RFC 4493, AEAD round-trips and
    tamper detection, plus property-based checks. *)

open Crypto

let check_hex msg expected b = Alcotest.(check string) msg expected (Hex.of_bytes b)

let aes_fips_vector () =
  (* FIPS-197 Appendix C.1 *)
  let key = Hex.to_bytes "000102030405060708090a0b0c0d0e0f" in
  let pt = Hex.to_bytes "00112233445566778899aabbccddeeff" in
  check_hex "FIPS-197 C.1" "69c4e0d86a7b0430d8cdb78070b4c55a" (Aes.encrypt (Aes.of_secret key) pt)

let aes_sp800_38a_vectors () =
  (* NIST SP 800-38A F.1.1: AES-128 ECB *)
  let k = Aes.of_secret (Hex.to_bytes "2b7e151628aed2a6abf7158809cf4f3c") in
  let cases =
    [
      ("6bc1bee22e409f96e93d7e117393172a", "3ad77bb40d7a3660a89ecaf32466ef97");
      ("ae2d8a571e03ac9c9eb76fac45af8e51", "f5d3d58503b9699de785895a96fdbaaf");
      ("30c81c46a35ce411e5fbc1191a0a52ef", "43b1cd7f598ece23881b00e3ed030688");
      ("f69f2445df4f9b17ad2b417be66c3710", "7b0c785e27e8ad3f8223207104725dd4");
    ]
  in
  List.iter
    (fun (pt, ct) -> check_hex pt ct (Aes.encrypt k (Hex.to_bytes pt)))
    cases

let aes_bad_key_size () =
  Alcotest.check_raises "15-byte key" (Invalid_argument "Aes.expand: key must be 16 bytes")
    (fun () -> ignore (Aes.of_secret (Bytes.make 15 'x')))

let aes_in_place () =
  (* encrypt_block must allow src == dst *)
  let k = Aes.of_secret (Hex.to_bytes "000102030405060708090a0b0c0d0e0f") in
  let b = Hex.to_bytes "00112233445566778899aabbccddeeff" in
  Aes.encrypt_block k ~src:b ~src_off:0 ~dst:b ~dst_off:0;
  check_hex "in place" "69c4e0d86a7b0430d8cdb78070b4c55a" b

let cmac_rfc4493_vectors () =
  let k = Cmac.of_secret (Hex.to_bytes "2b7e151628aed2a6abf7158809cf4f3c") in
  let m =
    "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710"
  in
  let digest hex = Hex.of_bytes (Cmac.digest k (Hex.to_bytes hex)) in
  Alcotest.(check string) "empty" "bb1d6929e95937287fa37d129b756746" (digest "");
  Alcotest.(check string) "16B" "070a16b46b4d4144f79bdd9dd04a287c"
    (digest (String.sub m 0 32));
  Alcotest.(check string) "40B" "dfa66747de9ae63030ca32611497c827"
    (digest (String.sub m 0 80));
  Alcotest.(check string) "64B" "51f0bebf7e3b9d92fc49741779363cfe" (digest m)

let cmac_truncation () =
  let k = Cmac.of_secret (Bytes.make 16 'k') in
  let m = Bytes.of_string "colibri" in
  let full = Cmac.digest k m in
  let t4 = Cmac.digest_trunc k m ~len:4 in
  Alcotest.(check int) "length" 4 (Bytes.length t4);
  Alcotest.(check string) "prefix" (Bytes.to_string (Bytes.sub full 0 4)) (Bytes.to_string t4);
  Alcotest.check_raises "len 0" (Invalid_argument "Cmac.digest_trunc: len must be in 1..16")
    (fun () -> ignore (Cmac.digest_trunc k m ~len:0));
  Alcotest.check_raises "len 17" (Invalid_argument "Cmac.digest_trunc: len must be in 1..16")
    (fun () -> ignore (Cmac.digest_trunc k m ~len:17))

let cmac_verify () =
  let k = Cmac.of_secret (Bytes.make 16 'k') in
  let m = Bytes.of_string "message" in
  let tag = Cmac.digest k m in
  Alcotest.(check bool) "valid" true (Cmac.verify k m ~tag);
  Alcotest.(check bool) "valid truncated" true
    (Cmac.verify k m ~tag:(Bytes.sub tag 0 4));
  let bad = Bytes.copy tag in
  Bytes.set bad 3 (Char.chr (Char.code (Bytes.get bad 3) lxor 1));
  Alcotest.(check bool) "tampered" false (Cmac.verify k m ~tag:bad);
  Alcotest.(check bool) "wrong message" false
    (Cmac.verify k (Bytes.of_string "messagf") ~tag);
  Alcotest.(check bool) "empty tag" false (Cmac.verify k m ~tag:Bytes.empty)

let aead_roundtrip () =
  let k = Aead.of_secret (Bytes.make 16 's') in
  let nonce = Bytes.make 16 'n' and ad = Bytes.of_string "header" in
  let plain = Bytes.of_string "the hop authenticator sigma" in
  let sealed = Aead.seal k ~nonce ~ad plain in
  Alcotest.(check int) "overhead" (Bytes.length plain + Aead.tag_size) (Bytes.length sealed);
  match Aead.open_ k ~nonce ~ad sealed with
  | Some p -> Alcotest.(check string) "plaintext" (Bytes.to_string plain) (Bytes.to_string p)
  | None -> Alcotest.fail "open_ failed on valid input"

let aead_rejects_tampering () =
  let k = Aead.of_secret (Bytes.make 16 's') in
  let nonce = Bytes.make 16 'n' and ad = Bytes.of_string "header" in
  let sealed = Aead.seal k ~nonce ~ad (Bytes.of_string "secret") in
  let flip i b =
    let c = Bytes.copy b in
    Bytes.set c i (Char.chr (Char.code (Bytes.get c i) lxor 0x80));
    c
  in
  Alcotest.(check bool) "ciphertext bit" true (Aead.open_ k ~nonce ~ad (flip 0 sealed) = None);
  Alcotest.(check bool) "tag bit" true
    (Aead.open_ k ~nonce ~ad (flip (Bytes.length sealed - 1) sealed) = None);
  Alcotest.(check bool) "wrong ad" true
    (Aead.open_ k ~nonce ~ad:(Bytes.of_string "other") sealed = None);
  Alcotest.(check bool) "wrong nonce" true
    (Aead.open_ k ~nonce:(Bytes.make 16 'm') ~ad sealed = None);
  Alcotest.(check bool) "wrong key" true
    (Aead.open_ (Aead.of_secret (Bytes.make 16 't')) ~nonce ~ad sealed = None);
  Alcotest.(check bool) "too short" true
    (Aead.open_ k ~nonce ~ad (Bytes.make 8 'x') = None)

let aead_empty_plaintext () =
  let k = Aead.of_secret (Bytes.make 16 's') in
  let nonce = Bytes.make 16 'n' in
  let sealed = Aead.seal k ~nonce ~ad:Bytes.empty Bytes.empty in
  match Aead.open_ k ~nonce ~ad:Bytes.empty sealed with
  | Some p -> Alcotest.(check int) "empty" 0 (Bytes.length p)
  | None -> Alcotest.fail "open_ failed"

let hex_roundtrip () =
  Alcotest.(check string) "spaces ignored"
    (Hex.of_bytes (Hex.to_bytes "de ad be ef"))
    "deadbeef";
  Alcotest.check_raises "odd length" (Invalid_argument "Hex.to_bytes: odd length")
    (fun () -> ignore (Hex.to_bytes "abc"));
  Alcotest.check_raises "bad digit" (Invalid_argument "Hex.to_bytes: not a hex digit")
    (fun () -> ignore (Hex.to_bytes "zz"))

(* Property-based tests *)

let bytes_gen =
  QCheck2.Gen.(map Bytes.of_string (string_size ~gen:printable (0 -- 200)))

let prop_cmac_deterministic =
  QCheck2.Test.make ~name:"cmac: deterministic and verifies" ~count:200 bytes_gen
    (fun msg ->
      let k = Cmac.of_secret (Bytes.make 16 'q') in
      let t1 = Cmac.digest k msg and t2 = Cmac.digest k msg in
      Bytes.equal t1 t2 && Cmac.verify k msg ~tag:t1)

let prop_cmac_distinct_keys =
  QCheck2.Test.make ~name:"cmac: different keys give different tags" ~count:100
    bytes_gen (fun msg ->
      let k1 = Cmac.of_secret (Bytes.make 16 'a')
      and k2 = Cmac.of_secret (Bytes.make 16 'b') in
      not (Bytes.equal (Cmac.digest k1 msg) (Cmac.digest k2 msg)))

let prop_aead_roundtrip =
  QCheck2.Test.make ~name:"aead: seal/open roundtrip" ~count:200
    QCheck2.Gen.(pair bytes_gen bytes_gen)
    (fun (plain, ad) ->
      let k = Aead.of_secret (Bytes.make 16 'z') in
      let nonce = Bytes.init 16 (fun i -> Char.chr ((i * 7) mod 256)) in
      match Aead.open_ k ~nonce ~ad (Aead.seal k ~nonce ~ad plain) with
      | Some p -> Bytes.equal p plain
      | None -> false)

let prop_hex_roundtrip =
  QCheck2.Test.make ~name:"hex: roundtrip" ~count:200 bytes_gen (fun b ->
      Bytes.equal (Hex.to_bytes (Hex.of_bytes b)) b)

let suite =
  [
    Alcotest.test_case "AES FIPS-197 vector" `Quick aes_fips_vector;
    Alcotest.test_case "AES SP800-38A vectors" `Quick aes_sp800_38a_vectors;
    Alcotest.test_case "AES rejects bad key size" `Quick aes_bad_key_size;
    Alcotest.test_case "AES in-place block" `Quick aes_in_place;
    Alcotest.test_case "CMAC RFC 4493 vectors" `Quick cmac_rfc4493_vectors;
    Alcotest.test_case "CMAC truncation" `Quick cmac_truncation;
    Alcotest.test_case "CMAC verify" `Quick cmac_verify;
    Alcotest.test_case "AEAD roundtrip" `Quick aead_roundtrip;
    Alcotest.test_case "AEAD rejects tampering" `Quick aead_rejects_tampering;
    Alcotest.test_case "AEAD empty plaintext" `Quick aead_empty_plaintext;
    Alcotest.test_case "hex helpers" `Quick hex_roundtrip;
    QCheck_alcotest.to_alcotest prop_cmac_deterministic;
    QCheck_alcotest.to_alcotest prop_cmac_distinct_keys;
    QCheck_alcotest.to_alcotest prop_aead_roundtrip;
    QCheck_alcotest.to_alcotest prop_hex_roundtrip;
  ]
