(** Tests for the topology substrate and its generators. *)

open Colibri_types
open Colibri_topology

let gbps = Bandwidth.of_gbps

let build_and_query () =
  let t = Topology.create () in
  let a = Ids.asn ~isd:1 ~num:1 and b = Ids.asn ~isd:1 ~num:2 in
  Topology.add_as t ~asn:a ~core:true;
  Topology.add_as t ~asn:b ~core:false;
  Topology.connect t ~a ~a_iface:1 ~b ~b_iface:1 ~capacity:(gbps 10.)
    ~kind:Topology.Parent_child;
  Alcotest.(check bool) "a core" true (Topology.is_core t a);
  Alcotest.(check bool) "b not core" false (Topology.is_core t b);
  Alcotest.(check int) "isds" 1 (List.length (Topology.isds t));
  Alcotest.(check int) "ases" 2 (List.length (Topology.ases t));
  Alcotest.(check int) "core ases" 1 (List.length (Topology.core_ases t));
  (match Topology.link_via t a 1 with
  | Some l ->
      Alcotest.(check bool) "link remote" true (Ids.equal_asn l.remote_as b);
      Alcotest.(check int) "remote iface" 1 l.remote_iface;
      Alcotest.(check bool) "kind" true (l.kind = Topology.Parent_child)
  | None -> Alcotest.fail "missing link");
  (* Reverse direction must exist with flipped kind. *)
  (match Topology.link_via t b 1 with
  | Some l -> Alcotest.(check bool) "flipped kind" true (l.kind = Topology.Child_parent)
  | None -> Alcotest.fail "missing reverse link");
  Alcotest.(check int) "children of a" 1 (List.length (Topology.children t a));
  Alcotest.(check int) "parents of b" 1 (List.length (Topology.parents t b));
  Alcotest.(check (float 0.)) "egress capacity" 10e9
    (Bandwidth.to_bps (Topology.egress_capacity t a 1))

let connect_errors () =
  let t = Topology.create () in
  let a = Ids.asn ~isd:1 ~num:1 and b = Ids.asn ~isd:1 ~num:2 in
  Topology.add_as t ~asn:a ~core:true;
  Topology.add_as t ~asn:b ~core:true;
  Topology.connect t ~a ~a_iface:1 ~b ~b_iface:1 ~capacity:(gbps 1.)
    ~kind:Topology.Core_link;
  Alcotest.(check bool) "duplicate AS raises" true
    (try
       Topology.add_as t ~asn:a ~core:false;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "iface reuse raises" true
    (try
       Topology.connect t ~a ~a_iface:1 ~b ~b_iface:2 ~capacity:(gbps 1.)
         ~kind:Topology.Core_link;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "iface 0 raises" true
    (try
       Topology.connect t ~a ~a_iface:0 ~b ~b_iface:3 ~capacity:(gbps 1.)
         ~kind:Topology.Core_link;
       false
     with Invalid_argument _ -> true)

let linear_topology () =
  let t = Topology_gen.linear ~n:5 ~capacity:(gbps 40.) in
  Alcotest.(check int) "ases" 5 (List.length (Topology.ases t));
  let p = Topology_gen.linear_path ~n:5 in
  Alcotest.(check bool) "path valid" true (Path.validate p = Ok ());
  Alcotest.(check bool) "path realizable" true (Topology.validate_path t p = Ok ());
  Alcotest.(check int) "path length" 5 (Path.length p)

let two_isd_topology () =
  let t = Topology_gen.two_isd () in
  let module G = Topology_gen.Two_isd in
  Alcotest.(check int) "isds" 2 (List.length (Topology.isds t));
  Alcotest.(check int) "core ases" 4 (List.length (Topology.core_ases t));
  Alcotest.(check bool) "S is leaf" false (Topology.is_core t G.s);
  Alcotest.(check bool) "Y1 is core" true (Topology.is_core t G.y1);
  (* Path diversity: X1 has two providers. *)
  Alcotest.(check int) "x1 providers" 2 (List.length (Topology.parents t G.x1))

let validate_path_errors () =
  let t = Topology_gen.linear ~n:3 ~capacity:(gbps 1.) in
  let bogus_as =
    [
      Path.hop ~asn:(Ids.asn ~isd:9 ~num:9) ~ingress:0 ~egress:0;
    ]
  in
  (match Topology.validate_path t bogus_as with
  | Error (Topology.Unknown_as _) -> ()
  | _ -> Alcotest.fail "expected Unknown_as");
  let wrong_iface =
    [
      Path.hop ~asn:(Ids.asn ~isd:1 ~num:1) ~ingress:0 ~egress:7;
      Path.hop ~asn:(Ids.asn ~isd:1 ~num:2) ~ingress:1 ~egress:0;
    ]
  in
  (match Topology.validate_path t wrong_iface with
  | Error (Topology.No_link _) -> ()
  | _ -> Alcotest.fail "expected No_link");
  let mismatched =
    [
      Path.hop ~asn:(Ids.asn ~isd:1 ~num:1) ~ingress:0 ~egress:2;
      Path.hop ~asn:(Ids.asn ~isd:1 ~num:3) ~ingress:1 ~egress:0;
    ]
  in
  (match Topology.validate_path t mismatched with
  | Error (Topology.Link_mismatch _) -> ()
  | _ -> Alcotest.fail "expected Link_mismatch")

let random_generator () =
  let rng = Random.State.make [| 11 |] in
  let t = Topology_gen.random ~rng ~isds:3 ~cores:2 ~leaves:4 in
  Alcotest.(check int) "core count" 6 (List.length (Topology.core_ases t));
  Alcotest.(check int) "total" 18 (List.length (Topology.ases t));
  (* Every leaf has at least one provider. *)
  Topology.ases t
  |> List.iter (fun a ->
         if not (Topology.is_core t a) then
           Alcotest.(check bool)
             (Fmt.str "%a has provider" Ids.pp_asn a)
             true
             (List.length (Topology.parents t a) >= 1));
  (* Determinism under the same seed. *)
  let t2 = Topology_gen.random ~rng:(Random.State.make [| 11 |]) ~isds:3 ~cores:2 ~leaves:4 in
  Alcotest.(check int) "deterministic" (List.length (Topology.ases t)) (List.length (Topology.ases t2))

let prop_random_links_bidirectional =
  QCheck2.Test.make ~name:"topology: every link has a consistent reverse" ~count:20
    QCheck2.Gen.(pair (1 -- 3) (1 -- 3))
    (fun (isds, cores) ->
      let rng = Random.State.make [| isds; cores |] in
      let t = Topology_gen.random ~rng ~isds ~cores ~leaves:3 in
      Topology.ases t
      |> List.for_all (fun a ->
             Topology.links t a
             |> List.for_all (fun (l : Topology.link) ->
                    match Topology.link_via t l.remote_as l.remote_iface with
                    | Some back ->
                        Ids.equal_asn back.remote_as a
                        && back.remote_iface = l.local_iface
                        && Bandwidth.equal back.capacity l.capacity
                    | None -> false)))

let suite =
  [
    Alcotest.test_case "build and query" `Quick build_and_query;
    Alcotest.test_case "connect errors" `Quick connect_errors;
    Alcotest.test_case "linear generator" `Quick linear_topology;
    Alcotest.test_case "two-ISD generator" `Quick two_isd_topology;
    Alcotest.test_case "validate_path errors" `Quick validate_path_errors;
    Alcotest.test_case "random generator" `Quick random_generator;
    QCheck_alcotest.to_alcotest prop_random_links_bidirectional;
  ]
