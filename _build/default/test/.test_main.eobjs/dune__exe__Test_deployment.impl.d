test/test_deployment.ml: Alcotest Astring Bandwidth Colibri Colibri_topology Colibri_types Cserv Deployment Fmt Gateway Ids List Path Reservation Result Router Segments Topology_gen
