test/test_dataplane_unit.ml: Alcotest Array Bandwidth Bytes Colibri Colibri_types Dataplane_shard Gateway Hashtbl Hvf Ids List Option Packet Path Printf Reservation Router Timebase
