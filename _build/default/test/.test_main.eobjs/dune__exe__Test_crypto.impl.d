test/test_crypto.ml: Aead Aes Alcotest Bytes Char Cmac Crypto Hex List QCheck2 QCheck_alcotest String
