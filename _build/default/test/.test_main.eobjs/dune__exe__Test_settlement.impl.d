test/test_settlement.ml: Alcotest Bandwidth Colibri Colibri_topology Colibri_types Ids List Settlement Timebase
