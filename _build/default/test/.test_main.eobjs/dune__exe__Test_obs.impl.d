test/test_obs.ml: Alcotest Array Astring Bandwidth Bytes Colibri Colibri_types Dataplane_shard Gateway Hvf Ids List Obs Packet Path Reservation Router String Timebase
