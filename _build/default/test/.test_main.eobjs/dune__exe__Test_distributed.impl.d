test/test_distributed.ml: Admission Alcotest Bandwidth Bytes Colibri Colibri_types Dataplane_shard Distributed Gateway Ids List Packet Path Printf Random Reservation
