test/test_admission.ml: Admission Alcotest Bandwidth Colibri Colibri_types Ids List Printf QCheck2 QCheck_alcotest
