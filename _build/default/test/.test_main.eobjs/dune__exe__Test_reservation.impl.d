test/test_reservation.ml: Alcotest Bandwidth Colibri Colibri_types Ids List Net Option Path Reservation
