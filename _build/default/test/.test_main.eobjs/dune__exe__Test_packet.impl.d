test/test_packet.ml: Alcotest Array Bandwidth Bytes Char Colibri Colibri_types Crypto Hvf Ids List Packet Path Printf QCheck2 QCheck_alcotest Timebase
