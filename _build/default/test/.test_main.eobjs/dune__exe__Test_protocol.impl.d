test/test_protocol.ml: Alcotest Bandwidth Bytes Char Colibri Colibri_types Crypto Fmt Hashtbl Ids List Packet Path Protocol QCheck2 QCheck_alcotest Reservation
