test/test_cserv.ml: Alcotest Bandwidth Bytes Colibri Colibri_topology Colibri_types Crypto Cserv Deployment Ids List Option Path Protocol Reservation Result Segments Topology_gen
