test/test_control_net.ml: Alcotest Bandwidth Colibri Colibri_topology Colibri_types Control_net Ids Net Printf Topology_gen
