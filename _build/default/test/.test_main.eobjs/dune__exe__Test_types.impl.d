test/test_types.ml: Alcotest Array Bandwidth Bytes Colibri_types Ids List Path QCheck2 QCheck_alcotest Timebase
