test/test_audit.ml: Admission Alcotest Bandwidth Bytes Colibri Colibri_types Dataplane_shard Distributed Fmt Hvf Ids List Monitor QCheck2 QCheck_alcotest Random Router
