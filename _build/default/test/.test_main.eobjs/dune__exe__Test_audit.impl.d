test/test_audit.ml: Admission Alcotest Bandwidth Colibri Colibri_types Distributed Fmt Ids List Monitor QCheck2 QCheck_alcotest Random
