test/test_net.ml: Alcotest Bandwidth Colibri_types List Net Printf
