test/test_baseline.ml: Alcotest Bandwidth Baseline Colibri_types Net Printf
