test/test_segments.ml: Alcotest Bandwidth Colibri_topology Colibri_types Ids List Path QCheck2 QCheck_alcotest Random Segments Topology Topology_gen
