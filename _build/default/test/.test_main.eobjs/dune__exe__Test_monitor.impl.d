test/test_monitor.ml: Alcotest Bandwidth Colibri_types Hashtbl Ids List Monitor Option Printf QCheck2 QCheck_alcotest Timebase
