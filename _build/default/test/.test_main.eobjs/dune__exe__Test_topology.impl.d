test/test_topology.ml: Alcotest Bandwidth Colibri_topology Colibri_types Fmt Ids List Path QCheck2 QCheck_alcotest Random Topology Topology_gen
