test/test_drkey.ml: Alcotest Bytes Colibri_types Crypto Drkey Ids QCheck2 QCheck_alcotest Timebase
