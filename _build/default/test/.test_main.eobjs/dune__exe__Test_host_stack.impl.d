test/test_host_stack.ml: Alcotest Bandwidth Colibri Colibri_topology Colibri_types Deployment Host_stack Ids List Net Printf Reservation Segments Topology_gen
