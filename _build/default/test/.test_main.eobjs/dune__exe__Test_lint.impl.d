test/test_lint.ml: Alcotest Astring Fmt Lint List Printf Sys
