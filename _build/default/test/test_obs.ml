(** Tests for the colibri-metrics layer: counter/gauge/histogram
    semantics, registry create-or-get, labeled families, merge, JSON
    export — and the end-to-end acceptance check that a mixed
    admit/drop workload through a gateway and a border router leaves
    per-reason drop counters and monitor occupancy gauges populated. *)

open Colibri_types
open Colibri

(* ---------- Snapshot helpers ---------- *)

let counter_of snap name =
  match List.assoc_opt name snap with
  | Some (Obs.Counter n) -> n
  | Some _ -> Alcotest.failf "%s is not a counter" name
  | None -> Alcotest.failf "missing counter %s" name

let gauge_of snap name =
  match List.assoc_opt name snap with
  | Some (Obs.Gauge g) -> g
  | Some _ -> Alcotest.failf "%s is not a gauge" name
  | None -> Alcotest.failf "missing gauge %s" name

let histogram_of snap name =
  match List.assoc_opt name snap with
  | Some (Obs.Histogram { count; sum; buckets }) -> (count, sum, buckets)
  | Some _ -> Alcotest.failf "%s is not a histogram" name
  | None -> Alcotest.failf "missing histogram %s" name

(* ---------- Primitives ---------- *)

let counter_basics () =
  let r = Obs.Registry.create () in
  let c = Obs.Registry.counter r "c_total" in
  Obs.Counter.incr c;
  Obs.Counter.add c 41;
  Alcotest.(check int) "incr + add" 42 (Obs.Counter.value c);
  Obs.Counter.add c (-7);
  Alcotest.(check int) "negative add ignored (monotonic)" 42 (Obs.Counter.value c)

let gauge_basics () =
  let r = Obs.Registry.create () in
  let g = Obs.Registry.gauge r "g" in
  Obs.Gauge.set g 3.5;
  Obs.Gauge.add g (-1.5);
  Alcotest.(check (float 1e-9)) "set + add" 2. (Obs.Gauge.value g)

let histogram_basics () =
  let r = Obs.Registry.create () in
  let h = Obs.Registry.histogram r "h" in
  List.iter (Obs.Histogram.observe h) [ 1.; 3.; 100.; 100000. ];
  Alcotest.(check int) "count" 4 (Obs.Histogram.count h);
  Alcotest.(check (float 1e-6)) "sum" 100104. (Obs.Histogram.sum h);
  let count, sum, buckets = histogram_of (Obs.Registry.snapshot r) "h" in
  Alcotest.(check int) "snapshot count" 4 count;
  Alcotest.(check (float 1e-6)) "snapshot sum" 100104. sum;
  (* Buckets are cumulative, increasing bounds, last bound infinite. *)
  let last_bound, last_n = buckets.(Array.length buckets - 1) in
  Alcotest.(check bool) "last bound infinite" true (last_bound = infinity);
  Alcotest.(check int) "last bucket holds all" 4 last_n;
  Array.iteri
    (fun i (b, n) ->
      if i > 0 then begin
        let b', n' = buckets.(i - 1) in
        Alcotest.(check bool) "bounds increase" true (b > b');
        Alcotest.(check bool) "counts cumulative" true (n >= n')
      end)
    buckets

let registry_create_or_get () =
  let r = Obs.Registry.create () in
  let a = Obs.Registry.counter r "same" in
  let b = Obs.Registry.counter r "same" in
  Obs.Counter.incr a;
  Obs.Counter.incr b;
  Alcotest.(check int) "one counter behind one name" 2 (Obs.Counter.value a);
  Alcotest.(check bool) "kind mismatch rejected" true
    (try
       ignore (Obs.Registry.gauge r "same");
       false
     with Invalid_argument _ -> true)

let gauge_fn_sampled_at_snapshot () =
  let r = Obs.Registry.create () in
  let live = ref 0 in
  Obs.Registry.gauge_fn r "live" (fun () -> float_of_int !live);
  live := 7;
  Alcotest.(check (float 0.)) "sampled late" 7.
    (gauge_of (Obs.Registry.snapshot r) "live");
  live := 9;
  Alcotest.(check (float 0.)) "sampled again" 9.
    (gauge_of (Obs.Registry.snapshot r) "live")

let labeled_naming () =
  Alcotest.(check string) "one label" "x_total{reason=\"expired\"}"
    (Obs.labeled "x_total" [ ("reason", "expired") ]);
  Alcotest.(check string) "no label" "x_total" (Obs.labeled "x_total" [])

let snapshot_sorted () =
  let r = Obs.Registry.create () in
  ignore (Obs.Registry.counter r "zz");
  ignore (Obs.Registry.counter r "aa");
  ignore (Obs.Registry.gauge r "mm");
  let names = List.map fst (Obs.Registry.snapshot r) in
  Alcotest.(check (list string)) "sorted by name" [ "aa"; "mm"; "zz" ] names

let merge_sums () =
  let mk sent occupancy size =
    let r = Obs.Registry.create () in
    Obs.Counter.add (Obs.Registry.counter r "sent_total") sent;
    Obs.Gauge.set (Obs.Registry.gauge r "occupancy") occupancy;
    Obs.Histogram.observe (Obs.Registry.histogram r "size") size;
    Obs.Registry.snapshot r
  in
  let m = Obs.merge [ mk 3 0.5 10.; mk 4 0.25 1000. ] in
  Alcotest.(check int) "counters sum" 7 (counter_of m "sent_total");
  Alcotest.(check (float 1e-9)) "gauges sum" 0.75 (gauge_of m "occupancy");
  let count, sum, _ = histogram_of m "size" in
  Alcotest.(check int) "histogram counts sum" 2 count;
  Alcotest.(check (float 1e-6)) "histogram sums sum" 1010. sum

let json_export () =
  let r = Obs.Registry.create () in
  Obs.Counter.add (Obs.Registry.counter r "c_total") 5;
  Obs.Gauge.set (Obs.Registry.gauge r "g") 1.5;
  Obs.Histogram.observe (Obs.Registry.histogram r "h") 3.;
  ignore
    (Obs.Registry.counter r (Obs.labeled "d_total" [ ("reason", "expired") ]));
  let json = Obs.to_json (Obs.Registry.snapshot r) in
  let contains sub = Astring.String.is_infix ~affix:sub json in
  Alcotest.(check bool) "object" true
    (String.length json > 1 && json.[0] = '{' && json.[String.length json - 1] = '}');
  Alcotest.(check bool) "counter" true (contains "\"c_total\":5");
  Alcotest.(check bool) "gauge" true (contains "\"g\":1.5");
  Alcotest.(check bool) "histogram fields" true
    (contains "\"count\":1" && contains "\"buckets\":");
  (* The {reason="…"} suffix must be escaped to stay a legal JSON key. *)
  Alcotest.(check bool) "labeled name escaped" true
    (contains "d_total{reason=\\\"expired\\\"}")

let asn_family_memoized () =
  let r = Obs.Registry.create () in
  let fam = Obs.Asn_counters.create r ~name:"denied_total" ~label:"src_as" in
  let a = Ids.asn ~isd:1 ~num:5 in
  Obs.Counter.incr (Obs.Asn_counters.get fam a);
  Obs.Counter.incr (Obs.Asn_counters.get fam a);
  Obs.Counter.incr (Obs.Asn_counters.get fam (Ids.asn ~isd:1 ~num:6));
  Alcotest.(check int) "same AS, same counter" 2
    (Obs.Counter.value (Obs.Asn_counters.get fam a));
  let members =
    List.filter
      (fun (n, _) -> String.starts_with ~prefix:"denied_total{src_as=" n)
      (Obs.Registry.snapshot r)
  in
  Alcotest.(check int) "two family members registered" 2 (List.length members)

let res_key_family_memoized () =
  let r = Obs.Registry.create () in
  let fam = Obs.Res_key_counters.create r ~name:"flow_total" ~label:"flow" in
  let k : Ids.res_key = { src_as = Ids.asn ~isd:1 ~num:2; res_id = 9 } in
  Obs.Counter.incr (Obs.Res_key_counters.get fam k);
  Obs.Counter.incr (Obs.Res_key_counters.get fam k);
  Alcotest.(check int) "same key, same counter" 2
    (Obs.Counter.value (Obs.Res_key_counters.get fam k))

(* ---------- Acceptance: mixed workload through gateway + router ----- *)

let asn n = Ids.asn ~isd:1 ~num:n
let mbps = Bandwidth.of_mbps

let path2 : Path.t =
  [
    Path.hop ~asn:(asn 1) ~ingress:0 ~egress:1;
    Path.hop ~asn:(asn 2) ~ingress:1 ~egress:0;
  ]

let mk_eer ?(res_id = 1) ~versions () : Reservation.eer =
  {
    key = { src_as = asn 1; res_id };
    path = path2;
    src_host = Ids.host 1;
    dst_host = Ids.host 2;
    segr_keys = [];
    versions;
  }

let secret = Hvf.as_secret_of_material (Bytes.make 16 'K')

let eer_packet ~now ~payload_len : Packet.t =
  let res_info : Packet.res_info =
    { src_as = asn 1; res_id = 4; bw = mbps 100.; exp_time = now +. 16.; version = 1 }
  in
  let eer_info : Packet.eer_info = { src_host = Ids.host 1; dst_host = Ids.host 2 } in
  let hop = List.nth path2 1 in
  let sigma = Hvf.sigma_of_bytes (Hvf.hop_auth secret ~res_info ~eer_info ~hop) in
  let ts = Timebase.Ts.of_times ~exp_time:res_info.exp_time ~now in
  let size = Packet.header_len ~hops:2 + payload_len in
  {
    kind = Packet.Eer;
    path = path2;
    res_info;
    eer_info = Some eer_info;
    ts;
    hvfs = [| Bytes.make 4 'x'; Hvf.eer_hvf sigma ~ts ~pkt_size:size |];
    payload_len;
  }

let mixed_workload_populates_metrics () =
  (* Gateway side: one live 1 Mbps reservation (burst 0.1 s → 12.5 kB),
     a mix of clean sends, an unknown ResId, and a rate-bust. *)
  let version : Reservation.version =
    { version = 1; bw = mbps 1.; exp_time = 16. }
  in
  let gw = Gateway.create ~clock:(fun () -> 0.) (asn 1) in
  (match
     Gateway.register gw
       ~eer:(mk_eer ~versions:[ version ] ())
       ~version
       ~sigmas:[ Bytes.make 16 'a'; Bytes.make 16 'b' ]
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Gateway.send gw ~res_id:1 ~payload_len:100 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "clean send dropped: %a" Gateway.pp_drop_reason e);
  (match Gateway.send gw ~res_id:777 ~payload_len:100 with
  | Error Gateway.Unknown_reservation -> ()
  | _ -> Alcotest.fail "unknown ResId not dropped");
  (match Gateway.send gw ~res_id:1 ~payload_len:20_000 with
  | Error Gateway.Rate_exceeded -> ()
  | _ -> Alcotest.fail "rate bust not dropped");
  let gs = Obs.Registry.snapshot (Gateway.metrics gw) in
  Alcotest.(check int) "gateway sent" 1 (counter_of gs "gateway_sent_packets_total");
  Alcotest.(check int) "gateway drop: unknown" 1
    (counter_of gs (Obs.labeled "gateway_dropped_total" [ ("reason", "unknown_reservation") ]));
  Alcotest.(check int) "gateway drop: rate" 1
    (counter_of gs (Obs.labeled "gateway_dropped_total" [ ("reason", "rate_exceeded") ]));
  Alcotest.(check (float 0.)) "gateway reservations gauge" 1.
    (gauge_of gs "gateway_reservations");
  (let count, _, _ = histogram_of gs "gateway_packet_bytes" in
   Alcotest.(check int) "packet-size histogram populated" 1 count);

  (* Router side (monitors at defaults): a forwarded packet, its
     replay, a corrupted HVF, and a truncated frame. *)
  let r = Router.create ~secret ~clock:(fun () -> 0.) (asn 2) in
  let pkt = eer_packet ~now:0. ~payload_len:10 in
  (match Router.process r ~packet:pkt ~actual_size:(Packet.wire_size pkt) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "valid packet dropped: %a" Router.pp_drop_reason e);
  (match Router.process r ~packet:pkt ~actual_size:(Packet.wire_size pkt) with
  | Error Router.Duplicate -> ()
  | _ -> Alcotest.fail "replay not dropped");
  let bad = eer_packet ~now:0. ~payload_len:20 in
  bad.hvfs.(1) <- Bytes.make 4 'z';
  (match Router.process r ~packet:bad ~actual_size:(Packet.wire_size bad) with
  | Error Router.Invalid_hvf -> ()
  | _ -> Alcotest.fail "bad HVF not dropped");
  (match Router.process_bytes r ~raw:(Bytes.make 3 '\000') ~payload_len:0 with
  | Error (Router.Parse_error _) -> ()
  | _ -> Alcotest.fail "truncated frame not a parse error");
  let rs = Obs.Registry.snapshot (Router.metrics r) in
  let dropped reason =
    counter_of rs (Obs.labeled "router_dropped_total" [ ("reason", reason) ])
  in
  Alcotest.(check int) "router forwarded" 1 (counter_of rs "router_forwarded_total");
  Alcotest.(check int) "router drop: duplicate" 1 (dropped "duplicate");
  Alcotest.(check int) "router drop: invalid_hvf" 1 (dropped "invalid_hvf");
  Alcotest.(check int) "router drop: parse_error" 1 (dropped "parse_error");
  Alcotest.(check int) "router drop: policed untouched" 0 (dropped "policed");
  (* Monitor occupancy gauges: the forwarded packet inserted into the
     duplicate filter and was observed by the OFD sketch. *)
  Alcotest.(check bool) "dup filter bits set" true
    (gauge_of rs "router_dup_filter_bits_set" > 0.);
  let fill = gauge_of rs "router_dup_filter_fill_ratio" in
  Alcotest.(check bool) "dup fill ratio in (0,1)" true (fill > 0. && fill < 1.);
  Alcotest.(check bool) "ofd observed packets" true
    (gauge_of rs "router_ofd_observed_packets" > 0.);
  (* Sampling is observation-only: a second snapshot reads the same. *)
  Alcotest.(check (float 0.)) "snapshot is pure"
    (gauge_of rs "router_dup_filter_bits_set")
    (gauge_of (Obs.Registry.snapshot (Router.metrics r)) "router_dup_filter_bits_set")

let sharded_metrics_aggregate () =
  (* Shards hand out disjoint registries; [metrics] must read like one
     big gateway: counters sum across shards. *)
  let version : Reservation.version =
    { version = 1; bw = mbps 100.; exp_time = 16. }
  in
  let sg =
    Dataplane_shard.Sharded_gateway.create ~clock:(fun () -> 0.) ~shards:4 (asn 1)
  in
  for res_id = 1 to 8 do
    (match
       Dataplane_shard.Sharded_gateway.register sg
         ~eer:(mk_eer ~res_id ~versions:[ version ] ())
         ~version
         ~sigmas:[ Bytes.make 16 'a'; Bytes.make 16 'b' ]
     with
    | Ok () -> ()
    | Error e -> Alcotest.fail e);
    match Dataplane_shard.Sharded_gateway.send sg ~res_id ~payload_len:100 with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "send dropped: %a" Gateway.pp_drop_reason e
  done;
  ignore (Dataplane_shard.Sharded_gateway.send sg ~res_id:999 ~payload_len:1);
  let m = Dataplane_shard.Sharded_gateway.metrics sg in
  Alcotest.(check int) "sent sums across shards" 8
    (counter_of m "gateway_sent_packets_total");
  Alcotest.(check int) "drops sum across shards" 1
    (counter_of m (Obs.labeled "gateway_dropped_total" [ ("reason", "unknown_reservation") ]));
  Alcotest.(check (float 0.)) "reservation gauge sums" 8.
    (gauge_of m "gateway_reservations")

let suite =
  [
    Alcotest.test_case "counter basics" `Quick counter_basics;
    Alcotest.test_case "gauge basics" `Quick gauge_basics;
    Alcotest.test_case "histogram basics" `Quick histogram_basics;
    Alcotest.test_case "registry create-or-get" `Quick registry_create_or_get;
    Alcotest.test_case "gauge_fn sampled at snapshot" `Quick gauge_fn_sampled_at_snapshot;
    Alcotest.test_case "labeled naming" `Quick labeled_naming;
    Alcotest.test_case "snapshot sorted" `Quick snapshot_sorted;
    Alcotest.test_case "merge sums" `Quick merge_sums;
    Alcotest.test_case "JSON export" `Quick json_export;
    Alcotest.test_case "per-AS counter family" `Quick asn_family_memoized;
    Alcotest.test_case "per-reservation counter family" `Quick res_key_family_memoized;
    Alcotest.test_case "mixed workload populates metrics" `Quick
      mixed_workload_populates_metrics;
    Alcotest.test_case "sharded metrics aggregate" `Quick sharded_metrics_aggregate;
  ]
