(** Tests for the discrete-event engine, link model, schedulers, and
    traffic sources. *)

open Colibri_types

(* ---------- Engine ---------- *)

let engine_ordering () =
  let e = Net.Engine.create () in
  let log = ref [] in
  Net.Engine.schedule e ~delay:2. (fun () -> log := "b" :: !log);
  Net.Engine.schedule e ~delay:1. (fun () -> log := "a" :: !log);
  Net.Engine.schedule e ~delay:3. (fun () -> log := "c" :: !log);
  Net.Engine.run e;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check (float 0.)) "clock at last event" 3. (Net.Engine.now e)

let engine_fifo_ties () =
  let e = Net.Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Net.Engine.schedule e ~delay:1. (fun () -> log := i :: !log)
  done;
  Net.Engine.run e;
  Alcotest.(check (list int)) "FIFO among ties" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let engine_until () =
  let e = Net.Engine.create () in
  let ran = ref 0 in
  Net.Engine.schedule e ~delay:1. (fun () -> incr ran);
  Net.Engine.schedule e ~delay:5. (fun () -> incr ran);
  Net.Engine.run e ~until:2.;
  Alcotest.(check int) "only early event" 1 !ran;
  Alcotest.(check (float 0.)) "clock at until" 2. (Net.Engine.now e);
  Net.Engine.run e;
  Alcotest.(check int) "rest runs" 2 !ran

let engine_nested_scheduling () =
  let e = Net.Engine.create () in
  let hits = ref [] in
  Net.Engine.schedule e ~delay:1. (fun () ->
      hits := Net.Engine.now e :: !hits;
      Net.Engine.schedule e ~delay:1. (fun () -> hits := Net.Engine.now e :: !hits));
  Net.Engine.run e;
  Alcotest.(check (list (float 0.))) "nested times" [ 1.; 2. ] (List.rev !hits)

let engine_negative_delay () =
  let e = Net.Engine.create () in
  Alcotest.check_raises "negative delay" (Invalid_argument "Engine.schedule: negative delay")
    (fun () -> Net.Engine.schedule e ~delay:(-1.) ignore)

let engine_every () =
  let e = Net.Engine.create () in
  let count = ref 0 in
  Net.Engine.every e ~every:1. (fun () ->
      incr count;
      !count < 3);
  Net.Engine.run e;
  Alcotest.(check int) "three ticks" 3 !count

(* ---------- Link ---------- *)

let mbps = Bandwidth.of_mbps

let link_serialization_rate () =
  (* 8 Mbps link, 1000-byte packets → 1 ms per packet. *)
  let e = Net.Engine.create () in
  let deliveries = ref [] in
  let link =
    Net.Link.create ~engine:e ~capacity:(mbps 8.) ~delay:0.
      ~deliver:(fun _ -> deliveries := Net.Engine.now e :: !deliveries)
      ()
  in
  for _ = 1 to 3 do
    Net.Link.send link ~bytes:1000 ~cls:Net.Traffic_class.Best_effort ()
  done;
  Net.Engine.run e;
  (match List.rev !deliveries with
  | [ t1; t2; t3 ] ->
      Alcotest.(check (float 1e-9)) "1st at 1ms" 0.001 t1;
      Alcotest.(check (float 1e-9)) "2nd at 2ms" 0.002 t2;
      Alcotest.(check (float 1e-9)) "3rd at 3ms" 0.003 t3
  | _ -> Alcotest.fail "expected 3 deliveries");
  let c = Net.Link.counters link Net.Traffic_class.Best_effort in
  Alcotest.(check int) "delivered pkts" 3 c.delivered_pkts;
  Alcotest.(check int) "delivered bytes" 3000 c.delivered_bytes

let link_propagation_delay () =
  let e = Net.Engine.create () in
  let at = ref 0. in
  let link =
    Net.Link.create ~engine:e ~capacity:(mbps 8.) ~delay:0.05
      ~deliver:(fun _ -> at := Net.Engine.now e)
      ()
  in
  Net.Link.send link ~bytes:1000 ~cls:Net.Traffic_class.Best_effort ();
  Net.Engine.run e;
  Alcotest.(check (float 1e-9)) "serialization + propagation" 0.051 !at

let link_priority_protects_colibri () =
  (* Saturate with best effort, then inject Colibri data: the Colibri
     packet is served before the queued best-effort backlog. *)
  let e = Net.Engine.create () in
  let order = ref [] in
  let link =
    Net.Link.create ~engine:e ~capacity:(mbps 8.) ~delay:0.
      ~scheduler:Net.Link.Strict_priority
      ~deliver:(fun (p : unit Net.Link.packet) -> order := p.cls :: !order)
      ()
  in
  for _ = 1 to 5 do
    Net.Link.send link ~bytes:1000 ~cls:Net.Traffic_class.Best_effort ()
  done;
  Net.Link.send link ~bytes:1000 ~cls:Net.Traffic_class.Colibri_data ();
  Net.Link.send link ~bytes:1000 ~cls:Net.Traffic_class.Colibri_control ();
  Net.Engine.run e;
  (* First delivery was already in flight (best effort); control and
     data must preempt the remaining queue, control first. *)
  (match List.rev !order with
  | first :: second :: third :: _ ->
      Alcotest.(check bool) "first was in-flight BE" true
        (first = Net.Traffic_class.Best_effort);
      Alcotest.(check bool) "control preempts" true
        (second = Net.Traffic_class.Colibri_control);
      Alcotest.(check bool) "data next" true (third = Net.Traffic_class.Colibri_data)
  | _ -> Alcotest.fail "expected deliveries")

let link_tail_drop () =
  let e = Net.Engine.create () in
  let link =
    Net.Link.create ~engine:e ~capacity:(mbps 1.) ~queue_limit_bytes:2000
      ~deliver:(fun _ -> ())
      ()
  in
  for _ = 1 to 10 do
    Net.Link.send link ~bytes:1000 ~cls:Net.Traffic_class.Best_effort ()
  done;
  Net.Engine.run e;
  let c = Net.Link.counters link Net.Traffic_class.Best_effort in
  Alcotest.(check int) "offered" 10 c.offered_pkts;
  Alcotest.(check bool) "some dropped" true (c.dropped_pkts > 0);
  Alcotest.(check int) "conservation" 10 (c.delivered_pkts + c.dropped_pkts)

let cbwfq_shares () =
  (* Two saturating classes with CBWFQ weights 0.25/0.75 split the link
     accordingly. *)
  let e = Net.Engine.create () in
  let link =
    Net.Link.create ~engine:e ~capacity:(mbps 8.)
      ~scheduler:(Net.Link.Cbwfq [| 0.25; 0.0; 0.75 |])
      ~queue_limit_bytes:(50 * 1000)
      ~deliver:(fun _ -> ())
      ()
  in
  (* Keep queues saturated via sources. *)
  let feed cls rate =
    let src =
      Net.Source.create ~engine:e ~rate ~packet_bytes:1000 ~emit:(fun bytes ->
          Net.Link.send link ~bytes ~cls ())
    in
    Net.Source.start src;
    src
  in
  let s1 = feed Net.Traffic_class.Best_effort (mbps 16.) in
  let s2 = feed Net.Traffic_class.Colibri_data (mbps 16.) in
  Net.Engine.run e ~until:5.;
  Net.Source.stop s1;
  Net.Source.stop s2;
  let be = (Net.Link.counters link Net.Traffic_class.Best_effort).delivered_bytes in
  let cd = (Net.Link.counters link Net.Traffic_class.Colibri_data).delivered_bytes in
  let share = float_of_int cd /. float_of_int (be + cd) in
  Alcotest.(check bool) (Printf.sprintf "data share ≈ 0.75 (%.3f)" share) true
    (share > 0.70 && share < 0.80)

let cbwfq_work_conserving () =
  (* With only best effort offered, it gets the whole link despite its
     20 % weight — unused Colibri bandwidth is scavenged (§3.4). *)
  let e = Net.Engine.create () in
  let link =
    Net.Link.create ~engine:e ~capacity:(mbps 8.)
      ~scheduler:(Net.Link.Cbwfq [| 0.20; 0.05; 0.75 |])
      ~deliver:(fun _ -> ())
      ()
  in
  let src =
    Net.Source.create ~engine:e ~rate:(mbps 8.) ~packet_bytes:1000 ~emit:(fun bytes ->
        Net.Link.send link ~bytes ~cls:Net.Traffic_class.Best_effort ())
  in
  Net.Source.start src;
  Net.Engine.run e ~until:2.;
  Net.Source.stop src;
  let c = Net.Link.counters link Net.Traffic_class.Best_effort in
  let achieved = 8. *. float_of_int c.delivered_bytes /. 2. in
  Alcotest.(check bool) (Printf.sprintf "BE gets full link (%.0f bps)" achieved) true
    (achieved > 0.95 *. 8e6)

let source_rate () =
  let e = Net.Engine.create () in
  let bytes_sent = ref 0 in
  let src =
    Net.Source.create ~engine:e ~rate:(mbps 4.) ~packet_bytes:500 ~emit:(fun b ->
        bytes_sent := !bytes_sent + b)
  in
  Net.Source.start src;
  Net.Engine.run e ~until:2.;
  Net.Source.stop src;
  Net.Engine.run e;
  let rate = 8. *. float_of_int !bytes_sent /. 2. in
  Alcotest.(check bool) (Printf.sprintf "≈4 Mbps (%.0f)" rate) true
    (rate > 0.97 *. 4e6 && rate < 1.03 *. 4e6)

let suite =
  [
    Alcotest.test_case "engine: time ordering" `Quick engine_ordering;
    Alcotest.test_case "engine: FIFO ties" `Quick engine_fifo_ties;
    Alcotest.test_case "engine: run until" `Quick engine_until;
    Alcotest.test_case "engine: nested scheduling" `Quick engine_nested_scheduling;
    Alcotest.test_case "engine: negative delay rejected" `Quick engine_negative_delay;
    Alcotest.test_case "engine: every" `Quick engine_every;
    Alcotest.test_case "link: serialization rate" `Quick link_serialization_rate;
    Alcotest.test_case "link: propagation delay" `Quick link_propagation_delay;
    Alcotest.test_case "link: priority protects Colibri" `Quick link_priority_protects_colibri;
    Alcotest.test_case "link: tail drop" `Quick link_tail_drop;
    Alcotest.test_case "link: CBWFQ shares" `Quick cbwfq_shares;
    Alcotest.test_case "link: CBWFQ work conserving" `Quick cbwfq_work_conserving;
    Alcotest.test_case "source: rate accuracy" `Quick source_rate;
  ]
