(** Tests for beaconing and segment combination. *)

open Colibri_types
open Colibri_topology

let module_db = ()

let discover_two_isd () =
  let topo = Topology_gen.two_isd () in
  let db = Segments.discover topo in
  let module G = Topology_gen.Two_isd in
  (* S has up-segments to the cores of its ISD. *)
  let ups = Segments.Db.up_segments db ~src:G.s in
  Alcotest.(check bool) "S has up segments" true (List.length ups >= 1);
  List.iter
    (fun (s : Segments.t) ->
      Alcotest.(check bool) "kind up" true (s.kind = Segments.Up);
      Alcotest.(check bool) "starts at S" true (Ids.equal_asn (Segments.source s) G.s);
      Alcotest.(check bool) "ends at a core" true
        (Topology.is_core topo (Segments.destination s));
      Alcotest.(check bool) "path valid" true (Path.validate s.path = Ok ());
      Alcotest.(check bool) "path realizable" true
        (Topology.validate_path topo s.path = Ok ()))
    ups;
  (* D has down-segments from its core. *)
  let downs = Segments.Db.down_segments db ~dst:G.d in
  Alcotest.(check bool) "D has down segments" true (List.length downs >= 1);
  List.iter
    (fun (s : Segments.t) ->
      Alcotest.(check bool) "ends at D" true (Ids.equal_asn (Segments.destination s) G.d);
      Alcotest.(check bool) "realizable" true (Topology.validate_path topo s.path = Ok ()))
    downs;
  (* Core segments between the two ISDs' cores exist in both directions. *)
  Alcotest.(check bool) "Y1→W1 core segs" true
    (List.length (Segments.Db.core_segments db ~src:G.y1 ~dst:G.w1) >= 1);
  Alcotest.(check bool) "W1→Y1 core segs" true
    (List.length (Segments.Db.core_segments db ~src:G.w1 ~dst:G.y1) >= 1)

let combination_leaf_to_leaf () =
  let topo = Topology_gen.two_isd () in
  let db = Segments.discover topo in
  let module G = Topology_gen.Two_isd in
  let combos = Segments.Db.combinations db ~src:G.s ~dst:G.d in
  Alcotest.(check bool) "has combinations" true (List.length combos >= 1);
  List.iter
    (fun combo ->
      Alcotest.(check bool) "at most 3 segments" true (List.length combo <= 3);
      let p = Segments.Db.join_path combo in
      Alcotest.(check bool) "joined path valid" true (Path.validate p = Ok ());
      Alcotest.(check bool) "realizable" true (Topology.validate_path topo p = Ok ());
      Alcotest.(check bool) "src" true (Ids.equal_asn (Path.source p) G.s);
      Alcotest.(check bool) "dst" true (Ids.equal_asn (Path.destination p) G.d))
    combos;
  (* Shortest-first ordering. *)
  let lengths = List.map (fun c -> Path.length (Segments.Db.join_path c)) combos in
  Alcotest.(check bool) "sorted by length" true
    (List.sort compare lengths = lengths)

let combination_with_core_endpoints () =
  let topo = Topology_gen.two_isd () in
  let db = Segments.discover topo in
  let module G = Topology_gen.Two_isd in
  (* core → core: single core segment. *)
  let cc = Segments.Db.combinations db ~src:G.y1 ~dst:G.w1 in
  Alcotest.(check bool) "core→core nonempty" true (cc <> []);
  List.iter (fun c -> Alcotest.(check int) "single segment" 1 (List.length c)) cc;
  (* leaf → core. *)
  let lc = Segments.Db.combinations db ~src:G.s ~dst:G.w1 in
  Alcotest.(check bool) "leaf→core nonempty" true (lc <> []);
  (* core → leaf. *)
  let cl = Segments.Db.combinations db ~src:G.y1 ~dst:G.d in
  Alcotest.(check bool) "core→leaf nonempty" true (cl <> []);
  (* same AS: no combination needed. *)
  Alcotest.(check (list (list int))) "same AS empty" []
    (List.map (List.map (fun _ -> 0)) (Segments.Db.combinations db ~src:G.s ~dst:G.s))

let shared_core_no_core_segment () =
  (* S and T2 under the same core: up+down with no core segment. *)
  let topo = Topology.create () in
  let core = Ids.asn ~isd:1 ~num:1 in
  let s = Ids.asn ~isd:1 ~num:10 and d = Ids.asn ~isd:1 ~num:11 in
  Topology.add_as topo ~asn:core ~core:true;
  Topology.add_as topo ~asn:s ~core:false;
  Topology.add_as topo ~asn:d ~core:false;
  Topology.connect topo ~a:core ~a_iface:1 ~b:s ~b_iface:1
    ~capacity:(Bandwidth.of_gbps 10.) ~kind:Topology.Parent_child;
  Topology.connect topo ~a:core ~a_iface:2 ~b:d ~b_iface:1
    ~capacity:(Bandwidth.of_gbps 10.) ~kind:Topology.Parent_child;
  let db = Segments.discover topo in
  let combos = Segments.Db.combinations db ~src:s ~dst:d in
  Alcotest.(check bool) "found" true (combos <> []);
  let shortest = List.hd combos in
  Alcotest.(check int) "up+down only" 2 (List.length shortest);
  let p = Segments.Db.join_path shortest in
  Alcotest.(check int) "3-AS path" 3 (Path.length p);
  Alcotest.(check bool) "realizable" true (Topology.validate_path topo p = Ok ())

let max_len_respected () =
  let topo = Topology_gen.linear ~n:8 ~capacity:(Bandwidth.of_gbps 10.) in
  let db = Segments.discover ~max_len:3 topo in
  let a1 = Ids.asn ~isd:1 ~num:1 and a8 = Ids.asn ~isd:1 ~num:8 in
  Alcotest.(check (list int)) "too far for max_len" []
    (List.map Segments.length (Segments.Db.core_segments db ~src:a1 ~dst:a8));
  let a4 = Ids.asn ~isd:1 ~num:4 in
  Alcotest.(check bool) "within max_len" true
    (Segments.Db.core_segments db ~src:a1 ~dst:a4 <> [])

let prop_random_topology_paths_realizable =
  QCheck2.Test.make ~name:"segments: all combined paths are realizable" ~count:15
    QCheck2.Gen.(pair (2 -- 3) (2 -- 4))
    (fun (isds, leaves) ->
      let rng = Random.State.make [| isds; leaves; 99 |] in
      let topo = Topology_gen.random ~rng ~isds ~cores:2 ~leaves in
      let db = Segments.discover topo in
      let ases = Topology.ases topo in
      (* Check a sample of src/dst pairs. *)
      List.for_all
        (fun src ->
          List.for_all
            (fun dst ->
              if Ids.equal_asn src dst then true
              else
                Segments.Db.paths db ~src ~dst ~limit:4
                |> List.for_all (fun p ->
                       Path.validate p = Ok ()
                       && Topology.validate_path topo p = Ok ()
                       && Ids.equal_asn (Path.source p) src
                       && Ids.equal_asn (Path.destination p) dst))
            (List.filteri (fun i _ -> i < 4) ases))
        (List.filteri (fun i _ -> i < 4) ases))

let prop_connected_leaves_have_routes =
  QCheck2.Test.make ~name:"segments: leaf pairs in a connected random topo have routes"
    ~count:10
    QCheck2.Gen.(2 -- 3)
    (fun isds ->
      let rng = Random.State.make [| isds; 123 |] in
      let topo = Topology_gen.random ~rng ~isds ~cores:2 ~leaves:3 in
      let db = Segments.discover topo in
      let leaves = List.filter (fun a -> not (Topology.is_core topo a)) (Topology.ases topo) in
      List.for_all
        (fun src ->
          List.for_all
            (fun dst ->
              Ids.equal_asn src dst
              || Segments.Db.combinations db ~src ~dst <> [])
            leaves)
        leaves)

let suite =
  ignore module_db;
  [
    Alcotest.test_case "discover on two-ISD topo" `Quick discover_two_isd;
    Alcotest.test_case "leaf-to-leaf combination" `Quick combination_leaf_to_leaf;
    Alcotest.test_case "core endpoint combinations" `Quick combination_with_core_endpoints;
    Alcotest.test_case "shared core needs no core segment" `Quick shared_core_no_core_segment;
    Alcotest.test_case "max_len respected" `Quick max_len_respected;
    QCheck_alcotest.to_alcotest prop_random_topology_paths_realizable;
    QCheck_alcotest.to_alcotest prop_connected_leaves_have_routes;
  ]
