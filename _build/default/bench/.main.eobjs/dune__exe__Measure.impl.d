bench/measure.ml: Array Int64 Monotonic_clock Printf String
