bench/main.mli:
