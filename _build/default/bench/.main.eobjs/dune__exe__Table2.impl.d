bench/table2.ml: Array Bandwidth Bytes Colibri Colibri_topology Colibri_types Deployment Gateway Ids List Measure Net Packet Path Printf Reservation Result Router Segments Timebase Topology
