(** Table 2 reproduction: data-plane protection at a border router
    with three 40 Gbps input ports and one 40 Gbps output port (§7.1).

    Three measurement phases send different mixtures of best-effort,
    authentic-Colibri, and unauthentic-Colibri traffic, all destined to
    the same output:

    - {b phase 1} — best-effort congestion: BE cross-traffic saturates
      the link; reservations keep their full bandwidth thanks to
      traffic prioritization (Appendix B);
    - {b phase 2} — unauthentic Colibri flood: forged packets are
      dropped by the cryptographic check and never reach the output;
    - {b phase 3} — reservation overuse: reservation 1 sends 40 Gbps
      through its 0.4 Gbps reservation from a rogue gateway; having
      been flagged by the probabilistic monitor, it is policed to its
      guaranteed bandwidth by the deterministic token bucket without
      affecting reservation 2.

    Simulated packets carry ~1 Mbit so that a 40 Gbps port is ~40 kpps
    of events; all rates are exact, only per-packet granularity is
    coarser than the testbed's. *)

open Colibri_types
open Colibri_topology
open Colibri

let gbps = Bandwidth.of_gbps

(* Star topology: router R (core) with leaves S1-S3 (inputs) and D. *)
let r = Ids.asn ~isd:1 ~num:1
let s1 = Ids.asn ~isd:1 ~num:11
let s2 = Ids.asn ~isd:1 ~num:12
let s3 = Ids.asn ~isd:1 ~num:13
let d_as = Ids.asn ~isd:1 ~num:20

let topo () =
  let t = Topology.create () in
  Topology.add_as t ~asn:r ~core:true;
  List.iter (fun a -> Topology.add_as t ~asn:a ~core:false) [ s1; s2; s3; d_as ];
  List.iteri
    (fun i leaf ->
      Topology.connect t ~a:r ~a_iface:(i + 1) ~b:leaf ~b_iface:1
        ~capacity:(gbps 40.) ~kind:Topology.Parent_child)
    [ s1; s2; s3; d_as ];
  t

type colibri_tag = Res1 | Res2 | Unauth

type pkt =
  | Colibri of { raw : bytes; payload_len : int; tag : colibri_tag }
  | Plain (* best effort *)

type accumulators = {
  mutable res1 : int; (* bytes delivered at D *)
  mutable res2 : int;
  mutable unauth : int;
  mutable best_effort : int;
}

type rates = { r1 : float; r2 : float; un : float; be : float }

(* One simulated phase: wire the sources, run for [duration] simulated
   seconds, return delivered Gbps per class at the destination. *)
type phase_spec = {
  res1_rate : Bandwidth.t; (* offered on reservation 1 (input 1) *)
  res1_rogue : bool; (* bypass the source-AS gateway monitoring *)
  res2_rate : Bandwidth.t; (* offered on reservation 2 (input 2) *)
  be_in2 : Bandwidth.t; (* best effort on input 2 *)
  be_in3 : Bandwidth.t; (* best effort on input 3 *)
  unauth_in3 : Bandwidth.t; (* unauthentic Colibri on input 3 *)
  watch : bool; (* phase 3: reservations under deterministic watch *)
}

let wire_bytes = 125_000 (* 1 Mbit on the wire *)

let run_phase (spec : phase_spec) : rates =
  let topo = topo () in
  let d = Deployment.create topo in
  let engine = Deployment.engine d in
  let acc = { res1 = 0; res2 = 0; unauth = 0; best_effort = 0 } in
  (* Output port R → D. *)
  let out_link =
    Net.Link.create ~engine ~capacity:(gbps 40.) ~delay:0.001
      ~scheduler:Net.Link.Strict_priority
      ~deliver:(fun (p : pkt Net.Link.packet) ->
        match p.payload with
        | Plain -> acc.best_effort <- acc.best_effort + p.bytes
        | Colibri { tag = Res1; _ } -> acc.res1 <- acc.res1 + p.bytes
        | Colibri { tag = Res2; _ } -> acc.res2 <- acc.res2 + p.bytes
        | Colibri { tag = Unauth; _ } -> acc.unauth <- acc.unauth + p.bytes)
      ()
  in
  (* The border router at R. *)
  let router = Deployment.router d r in
  (* Input ports S_i → R. *)
  let in_link _i =
    Net.Link.create ~engine ~capacity:(gbps 40.) ~delay:0.001
      ~scheduler:Net.Link.Strict_priority
      ~deliver:(fun (p : pkt Net.Link.packet) ->
        match p.payload with
        | Plain -> Net.Link.send out_link ~bytes:p.bytes ~cls:Net.Traffic_class.Best_effort Plain
        | Colibri { raw; payload_len; _ } -> (
            match Router.process_bytes router ~raw ~payload_len with
            | Ok _ ->
                Net.Link.send out_link ~bytes:p.bytes ~cls:Net.Traffic_class.Colibri_data
                  p.payload
            | Error _ -> () (* dropped at the router *)))
      ()
  in
  let in1 = in_link 1 and in2 = in_link 2 and in3 = in_link 3 in
  (* Reservations: EERs S1→D (0.4 Gbps) and S2→D (0.8 Gbps), each over
     an up- and a down-SegR through R. *)
  let db = Deployment.seg_db d in
  let setup_res ~src ~bw =
    let up = List.hd (Segments.Db.up_segments db ~src) in
    let _ =
      Result.get_ok
        (Deployment.setup_segr d ~path:up.Segments.path ~kind:Reservation.Up
           ~max_bw:(gbps 2.) ~min_bw:(gbps 0.01))
    in
    let down = List.hd (Segments.Db.down_segments db ~dst:d_as) in
    (* Down-SegRs are requested once; re-requesting from the second
       source AS's rig is fine since the initiator is R either way. *)
    let _ =
      Result.get_ok
        (Deployment.request_down_segr d ~path:down.Segments.path ~max_bw:(gbps 2.)
           ~min_bw:(gbps 0.01))
    in
    let route = List.hd (Deployment.lookup_eer_routes d ~src ~dst:d_as) in
    Result.get_ok
      (Deployment.setup_eer_full d ~route ~src_host:(Ids.host 1)
         ~dst_host:(Ids.host 2) ~bw)
  in
  let eer1, v1, sig1 = setup_res ~src:s1 ~bw:(gbps 0.4) in
  let eer2, _v2, _sig2 = setup_res ~src:s2 ~bw:(gbps 0.8) in
  (* Rogue gateway for phase 3 (res1 overuse): no rate limiting. *)
  let rogue_gw = Gateway.create ~burst:1e9 ~clock:(Deployment.clock d) s1 in
  (match Gateway.register rogue_gw ~eer:eer1 ~version:v1 ~sigmas:sig1 with
  | Ok () -> ()
  | Error e -> failwith e);
  if spec.watch then begin
    Router.watch router ~key:eer1.key ~rate:(gbps 0.4);
    Router.watch router ~key:eer2.key ~rate:(gbps 0.8)
  end;
  let payload_len = wire_bytes - Packet.header_len ~hops:3 in
  (* Traffic sources. *)
  let sources = ref [] in
  let feed link rate mk =
    if Bandwidth.is_positive rate then begin
      let src =
        Net.Source.create ~engine ~rate ~packet_bytes:wire_bytes ~emit:(fun bytes ->
            match mk () with
            | Some payload -> Net.Link.send link ~bytes ~cls:(match payload with
                | Plain -> Net.Traffic_class.Best_effort
                | Colibri _ -> Net.Traffic_class.Colibri_data) payload
            | None -> ())
      in
      Net.Source.start src;
      sources := src :: !sources
    end
  in
  let colibri_emitter gw (eer : Reservation.eer) tag () =
    match Gateway.send gw ~res_id:eer.key.res_id ~payload_len with
    | Ok (pkt, _) -> Some (Colibri { raw = Packet.to_bytes pkt; payload_len; tag })
    | Error _ -> None (* honest gateway drops overuse at the source *)
  in
  feed in1 spec.res1_rate
    (colibri_emitter
       (if spec.res1_rogue then rogue_gw else Deployment.gateway d s1)
       eer1 Res1);
  feed in2 spec.res2_rate (colibri_emitter (Deployment.gateway d s2) eer2 Res2);
  feed in2 spec.be_in2 (fun () -> Some Plain);
  feed in3 spec.be_in3 (fun () -> Some Plain);
  (* Unauthentic Colibri: syntactically valid packets with random HVFs
     claiming a bogus reservation of S3. *)
  let forged_path =
    [
      Path.hop ~asn:s3 ~ingress:0 ~egress:1;
      Path.hop ~asn:r ~ingress:3 ~egress:4;
      Path.hop ~asn:d_as ~ingress:1 ~egress:0;
    ]
  in
  let forge_counter = ref 0 in
  feed in3 spec.unauth_in3 (fun () ->
      incr forge_counter;
      let pkt : Packet.t =
        {
          kind = Packet.Eer;
          path = forged_path;
          res_info =
            {
              src_as = s3;
              res_id = 1;
              bw = gbps 10.;
              exp_time = Net.Engine.now engine +. 10.;
              version = 1;
            };
          eer_info = Some { src_host = Ids.host 66; dst_host = Ids.host 2 };
          ts = Timebase.Ts.of_int !forge_counter;
          hvfs = Array.init 3 (fun _ -> Bytes.make Packet.hvf_len 'f');
          payload_len;
        }
      in
      Some (Colibri { raw = Packet.to_bytes pkt; payload_len; tag = Unauth }));
  (* Warm-up, then measure one second. *)
  let warmup = 0.2 and duration = 1.0 in
  Net.Engine.run engine ~until:(Net.Engine.now engine +. warmup);
  let snap = (acc.res1, acc.res2, acc.unauth, acc.best_effort) in
  Net.Engine.run engine ~until:(Net.Engine.now engine +. duration);
  List.iter Net.Source.stop !sources;
  let r1_0, r2_0, un_0, be_0 = snap in
  let to_gbps bytes = 8. *. float_of_int bytes /. duration /. 1e9 in
  ignore (in1, in2, in3);
  {
    r1 = to_gbps (acc.res1 - r1_0);
    r2 = to_gbps (acc.res2 - r2_0);
    un = to_gbps (acc.unauth - un_0);
    be = to_gbps (acc.best_effort - be_0);
  }

let phases : (string * phase_spec) list =
  [
    ( "phase 1",
      {
        res1_rate = gbps 0.4;
        res1_rogue = false;
        res2_rate = gbps 0.8;
        be_in2 = gbps 39.2;
        be_in3 = gbps 40.0;
        unauth_in3 = Bandwidth.zero;
        watch = false;
      } );
    ( "phase 2",
      {
        res1_rate = gbps 0.4;
        res1_rogue = false;
        res2_rate = gbps 0.8;
        be_in2 = gbps 39.2;
        be_in3 = gbps 20.0;
        unauth_in3 = gbps 20.0;
        watch = false;
      } );
    ( "phase 3",
      {
        res1_rate = gbps 40.0;
        res1_rogue = true;
        res2_rate = gbps 0.8;
        be_in2 = gbps 39.2;
        be_in3 = gbps 20.0;
        unauth_in3 = gbps 20.0;
        watch = true;
      } );
  ]

let inputs_of (s : phase_spec) =
  (* (input1, input2, input3) offered Gbps per traffic class row. *)
  let g = Bandwidth.to_gbps in
  [
    ("Reservation 1", [ g s.res1_rate; 0.; 0. ]);
    ("Reservation 2", [ 0.; g s.res2_rate; 0. ]);
    ("Best effort", [ 0.; g s.be_in2; g s.be_in3 ]);
    ("Colibri unauth.", [ 0.; 0.; g s.unauth_in3 ]);
  ]

let run () =
  Measure.print_header
    "Table 2: data-plane protection (Gbps; 3x40G inputs, one 40G output)";
  Printf.printf "%-8s %-16s %8s %8s %8s | %8s\n" "" "Traffic class" "in 1" "in 2"
    "in 3" "Output";
  List.iter
    (fun (name, spec) ->
      let rates = run_phase spec in
      let outputs =
        [
          ("Reservation 1", rates.r1);
          ("Reservation 2", rates.r2);
          ("Best effort", rates.be);
          ("Colibri unauth.", rates.un);
        ]
      in
      List.iteri
        (fun i (cls, ins) ->
          let label = if i = 0 then name else "" in
          let skip =
            (* hide all-zero rows as the paper's table does *)
            List.for_all (fun x -> x = 0.) ins && List.assoc cls outputs = 0.
          in
          if not skip then begin
            let cell x = if x = 0. then "     --- " else Printf.sprintf "%8.3f " x in
            Printf.printf "%-8s %-16s %s%s%s| %s\n" label cls
              (cell (List.nth ins 0))
              (cell (List.nth ins 1))
              (cell (List.nth ins 2))
              (cell (List.assoc cls outputs))
          end)
        (inputs_of spec);
      print_newline ())
    phases
